package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/policy"
)

// testOpts keeps experiment tests fast while preserving shapes.
func testOpts() Options {
	opts := QuickOptions()
	opts.Days = 4
	opts.Users = 8
	opts.GBDTRounds = 10
	return opts
}

func TestBuildEnvSplit(t *testing.T) {
	opts := testOpts()
	env := BuildEnv(0, opts)
	if len(env.Train.Jobs) == 0 || len(env.Test.Jobs) == 0 {
		t.Fatalf("empty split: %d/%d", len(env.Train.Jobs), len(env.Test.Jobs))
	}
	if env.PeakUsage <= 0 {
		t.Fatal("zero peak usage")
	}
	// Train jobs all precede test jobs.
	cut := opts.Days * 24 * 3600 / 2
	for _, j := range env.Train.Jobs {
		if j.ArrivalSec >= cut {
			t.Fatalf("train job at %g >= cut %g", j.ArrivalSec, cut)
		}
	}
	for _, j := range env.Test.Jobs {
		if j.ArrivalSec < cut {
			t.Fatalf("test job at %g < cut %g", j.ArrivalSec, cut)
		}
	}
}

func TestFig1Diversity(t *testing.T) {
	res, err := Fig1(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 2 {
		t.Fatalf("workloads = %d", len(res.Workloads))
	}
	if ratio := res.DiversityRatio(); ratio < 10 {
		t.Errorf("diversity ratio = %.1f, want >= 10 (paper: orders of magnitude)", ratio)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "diversity ratio") {
		t.Error("render missing summary")
	}
}

func TestHeadroomOracleDominates(t *testing.T) {
	res, err := Headroom(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleTCOPct <= res.HeuristicTCOPct {
		t.Errorf("oracle %.3f%% <= heuristic %.3f%%", res.OracleTCOPct, res.HeuristicTCOPct)
	}
	if res.OracleTCOPct <= res.FirstFitTCOPct {
		t.Errorf("oracle %.3f%% <= firstfit %.3f%%", res.OracleTCOPct, res.FirstFitTCOPct)
	}
	// The paper reports 5.06x headroom; shapes vary with the generator
	// but the oracle should clearly dominate.
	if res.Ratio < 1.2 {
		t.Errorf("oracle/heuristic ratio = %.2f, want >= 1.2", res.Ratio)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Headroom") {
		t.Error("render missing title")
	}
}

func TestFig4OracleDensityPattern(t *testing.T) {
	res, err := Fig4(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quotas) != 3 {
		t.Fatalf("quotas = %d", len(res.Quotas))
	}
	for _, q := range res.Quotas {
		if q.NegativeAdmitted != 0 {
			t.Errorf("quota %.2f admitted %d negative-savings jobs", q.QuotaFrac, q.NegativeAdmitted)
		}
		// Densest quintile should be admitted at least as often as the
		// least dense one.
		if q.AdmitFracByDensityQuintile[4] < q.AdmitFracByDensityQuintile[0] {
			t.Errorf("quota %.2f: dense quintile %.2f < sparse %.2f",
				q.QuotaFrac, q.AdmitFracByDensityQuintile[4], q.AdmitFracByDensityQuintile[0])
		}
	}
	// Larger quotas admit more of the lower-density jobs.
	if res.Quotas[2].AdmitFracByDensityQuintile[1] < res.Quotas[0].AdmitFracByDensityQuintile[1] {
		t.Errorf("low-density admit fraction should grow with quota: %.2f -> %.2f",
			res.Quotas[0].AdmitFracByDensityQuintile[1], res.Quotas[2].AdmitFracByDensityQuintile[1])
	}
}

func TestFig6ClusterSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("still ~10s under the race detector even on the fast trainer")
	}
	res, err := Fig6(testOpts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	wins := 0
	for _, c := range res.Clusters {
		ours := c.TCOPct[policy.NameAdaptiveRanking]
		hash := c.TCOPct[policy.NameAdaptiveHash]
		if ours > hash {
			wins++
		}
	}
	if wins < 2 {
		t.Errorf("AdaptiveRanking beat AdaptiveHash on only %d/3 clusters", wins)
	}
	_, max, mean := res.ImprovementStats()
	t.Logf("improvement over best baseline: max %.2fx mean %.2fx", max, mean)
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 6") {
		t.Error("render missing title")
	}
}

func TestFig7QuotaSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment test: skipped in -short mode")
	}
	res, err := Fig7(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	oracleTCO := res.TCOPct[policy.NameOracleTCO]
	ranking := res.TCOPct[policy.NameAdaptiveRanking]
	hash := res.TCOPct[policy.NameAdaptiveHash]
	if len(oracleTCO) != len(res.Quotas) {
		t.Fatalf("oracle curve has %d points", len(oracleTCO))
	}
	// The oracle upper-bounds every method at every quota.
	for i := range res.Quotas {
		for _, m := range Fig7Methods {
			if m == policy.NameOracleTCO {
				continue
			}
			if res.TCOPct[m][i] > oracleTCO[i]+0.15 {
				t.Errorf("quota %.3f: %s (%.3f) exceeds oracle TCO (%.3f)",
					res.Quotas[i], m, res.TCOPct[m][i], oracleTCO[i])
			}
		}
	}
	// Our method dominates the non-ML ablation across the sweep.
	var rkSum, hashSum float64
	for i := range res.Quotas {
		rkSum += ranking[i]
		hashSum += hash[i]
	}
	if rkSum <= hashSum {
		t.Errorf("ranking area %.2f <= hash area %.2f", rkSum, hashSum)
	}
	// Oracle TCO at the largest quota should be near the theoretical
	// positive-savings ceiling and positive.
	if oracleTCO[len(oracleTCO)-1] <= 0 {
		t.Error("oracle TCO savings non-positive at full quota")
	}
}

func TestFig9aInferenceFast(t *testing.T) {
	res, err := Fig9a(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumJobs == 0 {
		t.Fatal("no jobs timed")
	}
	// The paper's Python prototype took ~4ms/job; our Go inference must
	// be well under 1ms.
	if res.MeanMicros > 1000 {
		t.Errorf("mean inference = %.1f us, want < 1000", res.MeanMicros)
	}
	if res.ModelNumTrees == 0 {
		t.Error("model has no trees")
	}
}

func TestFig9bAccuracyCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("~5s+ under the race detector even on the fast trainer")
	}
	res, err := Fig9b(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) < 3 {
		t.Fatalf("sizes = %d", len(res.Sizes))
	}
	for i, acc := range res.Accuracies {
		if acc < 1.0/15 {
			t.Errorf("size %d accuracy %.3f below chance", res.Sizes[i], acc)
		}
	}
}

func TestFig9cGroupImportance(t *testing.T) {
	if testing.Short() {
		t.Skip("~5s+ under the race detector even on the fast trainer")
	}
	opts := testOpts()
	opts.NumCategories = 6 // fewer binary probes for test speed
	res, err := Fig9c(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	// Normalization: importances per category sum to ~1 where any
	// signal exists.
	for c := range res.Categories {
		var sum float64
		for gi := range res.Groups {
			v := res.Importance[gi][c]
			if v < 0 || v > 1 {
				t.Fatalf("importance out of range: %g", v)
			}
			sum += v
		}
		if sum > 0 && (sum < 0.99 || sum > 1.01) {
			t.Errorf("category %d importance sums to %.3f", c, sum)
		}
	}
	// History (group A) should matter for density ranking categories
	// (the paper's headline finding for Fig 9c).
	if res.GroupMean("A") <= 0.05 {
		t.Errorf("group A mean importance = %.3f, want > 0.05", res.GroupMean("A"))
	}
}

func TestFig11TrueCategoryClose(t *testing.T) {
	if testing.Short() {
		t.Skip("~5s+ under the race detector even on the fast trainer")
	}
	res, err := Fig11(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predicted) != len(res.Quotas) {
		t.Fatal("curve length mismatch")
	}
	// The paper's point: predicted ~= true (diminishing returns from
	// accuracy). Allow a modest absolute gap.
	var predSum, trueSum float64
	for i := range res.Predicted {
		predSum += res.Predicted[i]
		trueSum += res.TrueCat[i]
	}
	if predSum < trueSum*0.6 {
		t.Errorf("predicted area %.2f far below true-category area %.2f", predSum, trueSum)
	}
	t.Logf("max gap: %.3f points", res.MaxGap())
}

func TestFig16Dynamics(t *testing.T) {
	res, err := Fig16(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	// Tighter quotas must hold a higher average threshold.
	tight := res.Series[0].MeanACT() // 0.01% quota
	loose := res.Series[3].MeanACT() // 50% quota
	if tight <= loose {
		t.Errorf("mean ACT at 0.01%% quota (%.2f) <= at 50%% (%.2f)", tight, loose)
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Errorf("quota %.4f recorded no controller decisions", s.QuotaFrac)
		}
	}
}

func TestTable4CategoryCount(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment test: skipped in -short mode")
	}
	opts := testOpts()
	res, err := Table4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Accuracy decreases with N (coarser tasks are easier).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Top1Acc > res.Rows[i-1].Top1Acc+0.05 {
			t.Errorf("accuracy rose from N=%d (%.2f) to N=%d (%.2f)",
				res.Rows[i-1].N, res.Rows[i-1].Top1Acc, res.Rows[i].N, res.Rows[i].Top1Acc)
		}
	}
	// N=2 accuracy should be the highest.
	if res.Rows[0].Top1Acc < res.Rows[2].Top1Acc {
		t.Errorf("N=2 accuracy %.2f below N=15 %.2f", res.Rows[0].Top1Acc, res.Rows[2].Top1Acc)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 4") {
		t.Error("render missing title")
	}
}

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "demo", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "333") {
		t.Errorf("table output:\n%s", out)
	}
}
