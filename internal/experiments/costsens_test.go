package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestCostSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("still ~10s under the race detector even on the fast trainer")
	}
	res, err := CostSensitivity(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Negative-savings fraction grows monotonically with the wear rate.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].NegativeFrac < res.Rows[i-1].NegativeFrac-1e-9 {
			t.Errorf("negative fraction fell from %.3f to %.3f as wear rose",
				res.Rows[i-1].NegativeFrac, res.Rows[i].NegativeFrac)
		}
	}
	// Savings shrink as wear gets expensive (cheapest vs dearest wear).
	if res.Rows[0].RankingTCO <= res.Rows[len(res.Rows)-1].RankingTCO {
		t.Errorf("ranking savings did not shrink with wear: %.3f -> %.3f",
			res.Rows[0].RankingTCO, res.Rows[len(res.Rows)-1].RankingTCO)
	}
	// The retrained BYOM stack works (positive savings) in every regime.
	for _, row := range res.Rows {
		if row.RankingTCO <= 0 {
			t.Errorf("wear x%.2f: no savings", row.WearMultiplier)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "wear-rate") {
		t.Error("render missing title")
	}
}
