package experiments

import (
	"fmt"
	"io"
	"math"
)

// Fig1Result reproduces Figure 1: two workloads' space usage and mean
// job lifetime aggregated per hour over a 12-hour window, showing the
// orders-of-magnitude diversity between workloads.
type Fig1Result struct {
	Workloads []Fig1Workload
}

// Fig1Workload is one workload's hourly series.
type Fig1Workload struct {
	Pipeline     string
	SpacePiB     []float64 // space usage (PiB) per hour bucket
	MeanLifetime []float64 // mean job lifetime (sec) per hour bucket
}

// Fig1 generates a cluster and extracts the two pipelines with the most
// extreme mean-size ratio, binning 12 hours of activity.
func Fig1(opts Options) (*Fig1Result, error) {
	env := BuildEnv(0, opts)
	jobs := env.Train.Jobs

	// Mean size per pipeline.
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, j := range jobs {
		sums[j.Pipeline] += j.SizeBytes
		counts[j.Pipeline]++
	}
	var biggest, smallest string
	for p := range sums {
		if counts[p] < 12 {
			continue // need enough activity to fill the series
		}
		mean := sums[p] / float64(counts[p])
		if biggest == "" || mean > sums[biggest]/float64(counts[biggest]) {
			biggest = p
		}
		if smallest == "" || mean < sums[smallest]/float64(counts[smallest]) {
			smallest = p
		}
	}
	if biggest == "" || smallest == "" || biggest == smallest {
		return nil, fmt.Errorf("experiments: fig1 could not find two distinct active pipelines")
	}

	res := &Fig1Result{}
	const hours = 12
	for _, p := range []string{biggest, smallest} {
		w := Fig1Workload{
			Pipeline:     p,
			SpacePiB:     make([]float64, hours),
			MeanLifetime: make([]float64, hours),
		}
		lifeSum := make([]float64, hours)
		lifeN := make([]int, hours)
		for _, j := range jobs {
			if j.Pipeline != p {
				continue
			}
			h := int(j.ArrivalSec / 3600)
			if h < 0 || h >= hours {
				continue
			}
			w.SpacePiB[h] += j.SizeBytes / math.Pow(2, 50)
			lifeSum[h] += j.LifetimeSec
			lifeN[h]++
		}
		for h := 0; h < hours; h++ {
			if lifeN[h] > 0 {
				w.MeanLifetime[h] = lifeSum[h] / float64(lifeN[h])
			}
		}
		res.Workloads = append(res.Workloads, w)
	}
	return res, nil
}

// DiversityRatio returns the ratio of the two workloads' peak space
// usage — the paper's point is that this spans orders of magnitude.
func (r *Fig1Result) DiversityRatio() float64 {
	if len(r.Workloads) != 2 {
		return 0
	}
	peak := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	a := peak(r.Workloads[0].SpacePiB)
	b := peak(r.Workloads[1].SpacePiB)
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

// Render writes the hourly series as text.
func (r *Fig1Result) Render(w io.Writer) {
	for _, wl := range r.Workloads {
		rows := make([][]string, len(wl.SpacePiB))
		for h := range wl.SpacePiB {
			rows[h] = []string{
				fmt.Sprintf("%d", h),
				fmt.Sprintf("%.3e", wl.SpacePiB[h]),
				fmt.Sprintf("%.1f", wl.MeanLifetime[h]),
			}
		}
		Table(w, "Fig 1 — workload "+wl.Pipeline, []string{"hour", "space(PiB)", "lifetime(s)"}, rows)
	}
	fmt.Fprintf(w, "peak-space diversity ratio: %.1fx\n", r.DiversityRatio())
}
