package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DriftResult is the workload-evolution extension experiment motivated
// by Section 2.3: "workloads exhibit significantly faster rates of
// change than the update cycles of storage systems" and "a static model
// cannot adapt to evolving workload patterns". We splice two cluster
// segments with different application mixes (users and pipelines change
// across the splice) and compare:
//
//   - stale: a model trained on the pre-drift segment only;
//   - retrained: a model retrained on the post-drift warmup (the BYOM
//     release path — the workload republishes at its own velocity);
//   - FirstFit, as the model-free floor.
//
// The paper's design predictions: the adaptive algorithm keeps even the
// stale model serviceable (hints generalize via metadata tokens and the
// controller corrects volume), and retraining recovers most of the gap.
type DriftResult struct {
	Quotas    []float64
	Stale     []float64
	Retrained []float64
	FirstFit  []float64
	// Eval set sizes (diagnostics).
	PreJobs, PostJobs int
}

// DriftScenario is the spliced workload-evolution environment, shared
// by the offline Drift experiment, the online-learning end-to-end test
// (internal/online) and cmd/serve -online: a cluster whose application
// mix changes abruptly at SpliceSec.
type DriftScenario struct {
	// Pre is the pre-drift cluster environment; models that must go
	// stale train on Pre.Train.
	Pre *Env
	// Warmup is the first half of the post-drift segment (what an
	// offline retrain gets to see); Eval is the remainder.
	Warmup, Eval *trace.Trace
	// Replay is the full serving stream: the pre-drift test half
	// followed contiguously by the whole post-drift segment. Replaying
	// it through the online loop exercises stable traffic first, then
	// the drift.
	Replay *trace.Trace
	// SpliceSec is the virtual time at which the mix changes.
	SpliceSec float64
}

// BuildDriftScenario splices cluster 0's mix (pre-drift) with cluster
// 5's mix (post-drift: different archetype weights, users and
// pipelines), the §2.3 "workloads evolve faster than storage systems"
// scenario.
func BuildDriftScenario(opts Options) (*DriftScenario, error) {
	pre := BuildEnv(0, opts)
	postOpts := opts
	postOpts.Seed = opts.Seed + 500
	post := BuildEnv(5, postOpts)

	offset := opts.Days * 24 * 3600
	postFull := &trace.Trace{Cluster: "drift"}
	postFull.Jobs = append(postFull.Jobs, post.Train.Jobs...)
	postFull.Jobs = append(postFull.Jobs, post.Test.Jobs...)
	postFull.Shift(offset)
	postFull.Sort()

	// Warmup (first half of the post segment) is what the retrained
	// model sees; evaluation runs on the remainder.
	cut := offset + opts.Days*24*3600/2
	warmup, eval := postFull.SplitAt(cut)
	if len(warmup.Jobs) < 100 || len(eval.Jobs) < 100 {
		return nil, fmt.Errorf("experiments: drift segments too small (%d/%d)",
			len(warmup.Jobs), len(eval.Jobs))
	}

	replay := &trace.Trace{Cluster: "drift-replay"}
	replay.Jobs = append(replay.Jobs, pre.Test.Jobs...)
	replay.Jobs = append(replay.Jobs, postFull.Jobs...)
	replay.Sort()

	return &DriftScenario{
		Pre:       pre,
		Warmup:    warmup,
		Eval:      eval,
		Replay:    replay,
		SpliceSec: offset,
	}, nil
}

// Drift builds the spliced scenario and evaluates the three methods.
func Drift(opts Options) (*DriftResult, error) {
	sc, err := BuildDriftScenario(opts)
	if err != nil {
		return nil, err
	}
	pre, eval := sc.Pre, sc.Eval

	staleModel, err := TrainModelOn(pre.Train.Jobs, pre.Cost, opts)
	if err != nil {
		return nil, err
	}
	retrainedModel, err := TrainModelOn(sc.Warmup.Jobs, pre.Cost, opts)
	if err != nil {
		return nil, err
	}

	peak := eval.PeakSSDUsage()
	res := &DriftResult{
		Quotas:   []float64{0.01, 0.05, 0.1, 0.25},
		PreJobs:  len(pre.Train.Jobs),
		PostJobs: len(eval.Jobs),
	}
	for _, frac := range res.Quotas {
		quota := peak * frac
		stale, err := runRankingOn(eval, staleModel, pre, quota)
		if err != nil {
			return nil, err
		}
		retrained, err := runRankingOn(eval, retrainedModel, pre, quota)
		if err != nil {
			return nil, err
		}
		ff, err := sim.Run(eval, policy.FirstFit{}, pre.Cost, sim.Config{SSDQuota: quota})
		if err != nil {
			return nil, err
		}
		res.Stale = append(res.Stale, stale)
		res.Retrained = append(res.Retrained, retrained)
		res.FirstFit = append(res.FirstFit, ff.TCOSavingsPercent())
	}
	return res, nil
}

// runRankingOn evaluates AdaptiveRanking with the given model on a
// trace and returns its TCO savings percent.
func runRankingOn(eval *trace.Trace, model *core.CategoryModel, env *Env, quota float64) (float64, error) {
	p, err := policy.NewAdaptiveRanking(model, env.Cost,
		core.DefaultAdaptiveConfig(model.NumCategories()))
	if err != nil {
		return 0, err
	}
	r, err := sim.Run(eval, p, env.Cost, sim.Config{SSDQuota: quota})
	if err != nil {
		return 0, err
	}
	return r.TCOSavingsPercent(), nil
}

// Render writes the drift comparison.
func (r *DriftResult) Render(w io.Writer) {
	var rows [][]string
	for i, q := range r.Quotas {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", q*100),
			fmt.Sprintf("%.3f", r.Stale[i]),
			fmt.Sprintf("%.3f", r.Retrained[i]),
			fmt.Sprintf("%.3f", r.FirstFit[i]),
		})
	}
	Table(w, "Extension — workload drift: stale vs retrained model (§2.3)",
		[]string{"quota", "stale TCO%", "retrained TCO%", "firstfit TCO%"}, rows)
}
