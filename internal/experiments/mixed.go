package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// buildMixedSchedule reproduces Appendix C.1's mixed deployment:
// 4 HDD-suitable + 4 SSD-suitable framework pipelines together with
// 10 HDD-suitable ML-checkpointing and 10 SSD-suitable
// compress-upload-delete conventional workloads, at a 1:1 framework to
// non-framework byte ratio.
func buildMixedSchedule(seed int64) (*protoSchedule, error) {
	_, specs, err := frameworkPipelines()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x13))
	sched := &protoSchedule{}

	// Framework side: 8 pipelines x 24 executions.
	var fwBytes float64
	for _, spec := range specs {
		period := 400.0 + rng.Float64()*150
		phase := rng.Float64() * period
		for k := 0; k < 24; k++ {
			at := phase + float64(k)*period + rng.NormFloat64()*60
			if at < 0 {
				at = 0
			}
			s := spec
			s.InputBytes *= 0.7 + rng.Float64()*0.6
			fwBytes += s.InputBytes
			sched.execs = append(sched.execs, protoExecution{spec: s, startAt: at, class: "framework"})
		}
	}

	// Non-framework side: sized to roughly match framework bytes.
	var nfw []*nonFrameworkWorkload
	for i := 0; i < 10; i++ {
		// ML training checkpoints: large, long-held, rarely re-read.
		nfw = append(nfw, &nonFrameworkWorkload{
			name:      fmt.Sprintf("mlckpt%02d", i),
			fileBytes: 16 * (1 << 30),
			holdSec:   6 * 3600,
			readBack:  0.1,
			readOp:    8 << 20,
			category:  0, // the workload's own model: "we are HDD data"
		})
	}
	for i := 0; i < 10; i++ {
		// Compress-upload-delete: hot, short-lived temporary files.
		nfw = append(nfw, &nonFrameworkWorkload{
			name:      fmt.Sprintf("compress%02d", i),
			fileBytes: 1 << 30,
			holdSec:   120,
			readBack:  3,
			readOp:    128 * 1024,
			category:  14, // "we are hot, short-lived data"
			hot:       true,
		})
	}
	var nfwBytes float64
	horizon := 24.0 * 3600
	for _, w := range nfw {
		period := 1800.0
		if w.hot {
			period = 600
		}
		phase := rng.Float64() * period
		for at := phase; at < horizon; at += period * (0.8 + rng.Float64()*0.4) {
			sched.execs = append(sched.execs, protoExecution{
				nonFW: w, startAt: at, class: "non-framework",
			})
			nfwBytes += w.fileBytes
			if nfwBytes > fwBytes {
				break
			}
		}
		if nfwBytes > fwBytes {
			continue
		}
	}
	sched.sort()
	return sched, nil
}

// Fig13Result reproduces Figure 13: prototype TCO and TCIO savings for
// framework and non-framework workloads under FirstFit and
// AdaptiveRanking at 1% and 20% quota.
type Fig13Result struct {
	Rows []Fig13Row
	// Runtimes saves the per-class mean runtimes for Fig 14:
	// [AdaptiveRanking, FirstFit, all-HDD baseline].
	Runtimes map[string]map[string][3]float64 // quota -> class
}

// Fig13Row is one (quota, class) cell pair.
type Fig13Row struct {
	QuotaFrac    float64
	Class        string
	RankingTCO   float64
	FirstFitTCO  float64
	RankingTCIO  float64
	FirstFitTCIO float64
}

// Fig13 runs the mixed deployment.
func Fig13(opts Options) (*Fig13Result, error) {
	sched, err := buildMixedSchedule(opts.Seed)
	if err != nil {
		return nil, err
	}
	cm := cost.Default()
	model, peak, hddRun, err := trainPrototypeModel(sched, opts, cm)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{Runtimes: map[string]map[string][3]float64{}}
	for _, frac := range []float64{0.01, 0.20} {
		quota := peak * frac
		ff, err := runDeployment(sched, quota, &dfs.FitDecider{}, nil)
		if err != nil {
			return nil, err
		}
		acfg := core.DefaultAdaptiveConfig(model.NumCategories())
		acfg.DecisionIntervalSec = 120
		acfg.LookBackSec = 900
		acfg.SpilloverLow = 0.05
		acfg.SpilloverHigh = 0.35
		ad, err := dfs.NewAdaptiveDecider(acfg)
		if err != nil {
			return nil, err
		}
		hinter := dataflow.HinterFunc(func(j *trace.Job) int { return model.Predict(j) })
		ar, err := runDeployment(sched, quota, ad, hinter)
		if err != nil {
			return nil, err
		}
		ffS := accountSavings(ff, cm)
		arS := accountSavings(ar, cm)
		quotaKey := fmt.Sprintf("%.0f%%", frac*100)
		res.Runtimes[quotaKey] = map[string][3]float64{}
		for _, class := range []string{"framework", "non-framework"} {
			fS, aS := ffS[class], arS[class]
			if fS == nil || aS == nil {
				return nil, fmt.Errorf("experiments: fig13 missing class %q", class)
			}
			res.Rows = append(res.Rows, Fig13Row{
				QuotaFrac:    frac,
				Class:        class,
				RankingTCO:   aS.tcoPct(),
				FirstFitTCO:  fS.tcoPct(),
				RankingTCIO:  aS.tcioPct(),
				FirstFitTCIO: fS.tcioPct(),
			})
			arMean := metrics.Summarize(ar.runtimes[class]).Mean
			ffMean := metrics.Summarize(ff.runtimes[class]).Mean
			hddMean := metrics.Summarize(hddRun.runtimes[class]).Mean
			res.Runtimes[quotaKey][class] = [3]float64{arMean, ffMean, hddMean}
		}
	}
	return res, nil
}

// Render writes the mixed-workload savings.
func (r *Fig13Result) Render(w io.Writer) {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", row.QuotaFrac*100),
			row.Class,
			fmt.Sprintf("%.3f", row.RankingTCO),
			fmt.Sprintf("%.3f", row.FirstFitTCO),
			fmt.Sprintf("%.3f", row.RankingTCIO),
			fmt.Sprintf("%.3f", row.FirstFitTCIO),
		})
	}
	Table(w, "Fig 13 — mixed workload prototype savings",
		[]string{"quota", "class", "AR TCO%", "FF TCO%", "AR TCIO%", "FF TCIO%"}, rows)
}

// Fig14Result reproduces Figure 14: application run-time savings per
// workload class, measured against the all-HDD baseline. Workloads are
// written assuming HDD performance, so any speedup is opportunistic and
// the requirement is that no workload regresses relative to that
// baseline.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14Row is one (quota, class, method) runtime comparison.
type Fig14Row struct {
	QuotaFrac   float64
	Class       string
	Method      string
	RuntimeSec  float64
	BaselineSec float64 // all-HDD runtime
	SavingsPct  float64
}

// Fig14 derives runtime savings from the Fig 13 deployment.
func Fig14(opts Options) (*Fig14Result, error) {
	f13, err := Fig13(opts)
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{}
	for quotaKey, classes := range f13.Runtimes {
		var frac float64
		fmt.Sscanf(quotaKey, "%f%%", &frac)
		for class, rt := range classes {
			ar, ff, hdd := rt[0], rt[1], rt[2]
			for _, mr := range []struct {
				method  string
				runtime float64
			}{{"AdaptiveRanking", ar}, {"FirstFit", ff}} {
				savings := 0.0
				if hdd > 0 {
					savings = 100 * (hdd - mr.runtime) / hdd
				}
				res.Rows = append(res.Rows, Fig14Row{
					QuotaFrac: frac / 100, Class: class, Method: mr.method,
					RuntimeSec: mr.runtime, BaselineSec: hdd, SavingsPct: savings,
				})
			}
		}
	}
	sortFig14(res.Rows)
	return res, nil
}

func sortFig14(rows []Fig14Row) {
	sort.SliceStable(rows, func(a, b int) bool {
		x, y := rows[a], rows[b]
		if x.QuotaFrac != y.QuotaFrac {
			return x.QuotaFrac < y.QuotaFrac
		}
		if x.Class != y.Class {
			return x.Class < y.Class
		}
		return x.Method < y.Method
	})
}

// MinSavings returns the worst runtime savings (negative = regression).
func (r *Fig14Result) MinSavings() float64 {
	min := 1e18
	for _, row := range r.Rows {
		if row.SavingsPct < min {
			min = row.SavingsPct
		}
	}
	return min
}

// Render writes the runtime comparison.
func (r *Fig14Result) Render(w io.Writer) {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", row.QuotaFrac*100),
			row.Class,
			row.Method,
			fmt.Sprintf("%.1f", row.RuntimeSec),
			fmt.Sprintf("%.1f", row.BaselineSec),
			fmt.Sprintf("%.2f", row.SavingsPct),
		})
	}
	Table(w, "Fig 14 — application run-time savings vs all-HDD baseline",
		[]string{"quota", "class", "method", "mean s", "HDD s", "savings %"}, rows)
	fmt.Fprintf(w, "worst savings: %.2f%% (paper: no workload regresses)\n", r.MinSavings())
}
