package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/dfs"
	"repro/internal/trace"
)

func TestDebugACT(t *testing.T) {
	opts := DefaultOptions()
	sched, err := buildFig5Schedule(opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cm := cost.Default()
	model, peak, _, err := trainPrototypeModel(sched, opts, cm)
	if err != nil {
		t.Fatal(err)
	}
	acfg := core.DefaultAdaptiveConfig(model.NumCategories())
	acfg.DecisionIntervalSec = 120
	acfg.LookBackSec = 600
	acfg.RecordTrace = true
	ad, err := dfs.NewAdaptiveDecider(acfg)
	if err != nil {
		t.Fatal(err)
	}
	hinter := dataflow.HinterFunc(func(j *trace.Job) int { return model.Predict(j) })
	res, err := runDeployment(sched, peak*0.01, ad, hinter)
	if err != nil {
		t.Fatal(err)
	}
	tr := ad.Trace()
	fmt.Printf("decisions=%d peakUsed=%.2fGiB quota=%.2fGiB\n", len(tr), res.peakSSD/(1<<30), peak*0.01/(1<<30))
	for i, p := range tr {
		if i%5 == 0 {
			fmt.Printf("t=%6.0f ACT=%2d spill=%.3f\n", p.At, p.ACT, p.Spillover)
		}
	}
	// How many jobs admitted by category?
	admitted := map[int]int{}
	for _, rec := range res.records {
		if rec.FracOnSSD > 0 {
			admitted[rec.Category]++
		}
	}
	fmt.Printf("admitted by category: %v\n", admitted)
}
