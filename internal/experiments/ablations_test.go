package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestGranularityAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("still ~10s under the race detector even on the fast trainer")
	}
	res, err := Granularity(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]GranularityRow{}
	for _, row := range res.Rows {
		byName[row.Granularity] = row
		if row.NumModels < 1 {
			t.Errorf("%s trained no models", row.Granularity)
		}
		if row.Accuracy <= 1.0/15 {
			t.Errorf("%s accuracy %.3f at or below chance", row.Granularity, row.Accuracy)
		}
		if row.TCOPctAt1 <= 0 {
			t.Errorf("%s no savings at 1%% quota", row.Granularity)
		}
	}
	if byName["per-cluster"].NumModels != 1 {
		t.Errorf("per-cluster models = %d", byName["per-cluster"].NumModels)
	}
	if byName["per-pipeline"].NumModels <= byName["per-user"].NumModels {
		t.Errorf("per-pipeline (%d) should be finer than per-user (%d)",
			byName["per-pipeline"].NumModels, byName["per-user"].NumModels)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "granularity") {
		t.Error("render missing title")
	}
}

func TestLabelDesignAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("~5s+ under the race detector even on the fast trainer")
	}
	res, err := LabelDesign(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]LabelDesignRow{}
	for _, row := range res.Rows {
		byName[row.Spacing] = row
	}
	q := byName["quantile"]
	lin := byName["linear"]
	lg := byName["log"]
	// The paper's core claim: quantile spacing balances the classes;
	// linear spacing is heavily imbalanced.
	if q.BalanceEntropy < 0.95 {
		t.Errorf("quantile balance entropy = %.3f, want ~1", q.BalanceEntropy)
	}
	if lin.BalanceEntropy >= q.BalanceEntropy {
		t.Errorf("linear entropy %.3f >= quantile %.3f: expected imbalance", lin.BalanceEntropy, q.BalanceEntropy)
	}
	// Quantile classes each hold ~1/(N-1) of the positives; linear
	// spacing concentrates a large share in one class.
	if lin.LargestClassFrac < 3*q.LargestClassFrac {
		t.Errorf("linear largest class %.2f not clearly above quantile %.2f",
			lin.LargestClassFrac, q.LargestClassFrac)
	}
	// Imbalanced labels inflate apparent accuracy (predict the big
	// class); sanity: linear's accuracy should not be below chance.
	if lg.Accuracy <= 0 || lin.Accuracy <= 0 {
		t.Error("degenerate accuracy")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "label design") {
		t.Error("render missing title")
	}
}

func TestWindowSemanticsAblation(t *testing.T) {
	res, err := WindowSemantics(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StartWithin) != len(res.Quotas) || len(res.Overlapping) != len(res.Quotas) {
		t.Fatal("curve lengths wrong")
	}
	var sw, ov float64
	for i := range res.Quotas {
		sw += res.StartWithin[i]
		ov += res.Overlapping[i]
	}
	// Both semantics must produce positive savings; the paper prefers
	// start-within, so it should not lose meaningfully overall.
	if sw <= 0 || ov <= 0 {
		t.Fatalf("degenerate savings: start-within %.3f, overlapping %.3f", sw, ov)
	}
	if sw < ov*0.85 {
		t.Errorf("start-within area %.3f clearly below overlapping %.3f", sw, ov)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "window semantics") {
		t.Error("render missing title")
	}
}
