package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Fig8Result reproduces Figure 8: cross-workload generalization. A
// category model trained on each of clusters C0..C3 is evaluated on
// C0's test week across quotas. C3 is the pathological cluster running
// only workloads rare elsewhere; its model should underperform, while
// C1/C2 models should track the home-trained model.
type Fig8Result struct {
	Quotas []float64
	// TCOPct["C1"] is the savings curve on C0 using the model trained
	// on C1. "baseline" is the best non-BYOM baseline on C0.
	TCOPct map[string][]float64
}

// Fig8 trains one model per cluster C0..C3 and evaluates all on C0.
func Fig8(opts Options) (*Fig8Result, error) {
	target := BuildEnv(0, opts)
	res := &Fig8Result{Quotas: QuotaFractions, TCOPct: map[string][]float64{}}

	models := map[string]*core.CategoryModel{}
	for i := 0; i < 4; i++ {
		env := BuildEnv(i, opts)
		model, err := env.TrainModel(opts)
		if err != nil {
			return nil, fmt.Errorf("training on %s: %w", env.Cluster, err)
		}
		models[env.Cluster] = model
	}

	for _, frac := range res.Quotas {
		quota := target.PeakUsage * frac
		for cluster, model := range models {
			suite, err := target.RunSuite(quota, SuiteConfig{Model: model})
			if err != nil {
				return nil, err
			}
			res.TCOPct["train "+cluster] = append(res.TCOPct["train "+cluster],
				suite.TCOPercent(policy.NameAdaptiveRanking))
			if cluster == "C0" {
				res.TCOPct["baseline"] = append(res.TCOPct["baseline"], suite.BestBaselineTCO())
			}
		}
	}
	return res, nil
}

// Render writes the generalization curves.
func (r *Fig8Result) Render(w io.Writer) {
	keys := make([]string, 0, len(r.TCOPct))
	for k := range r.TCOPct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	header := []string{"series"}
	for _, q := range r.Quotas {
		header = append(header, fmt.Sprintf("%.1f%%", q*100))
	}
	var rows [][]string
	for _, k := range keys {
		row := []string{k}
		for _, v := range r.TCOPct[k] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		rows = append(rows, row)
	}
	Table(w, "Fig 8 — workload generalization (all curves evaluated on C0)", header, rows)
}

// Fig10Result reproduces Figure 10: generalization to new users and new
// pipelines. For each cluster, the second-largest TCO user (or
// pipeline) is withheld from training; the with/without curves should
// nearly coincide.
type Fig10Result struct {
	Mode     string // "user" or "pipeline"
	Clusters []Fig10Cluster
}

// Fig10Cluster is one cluster's with/without comparison.
type Fig10Cluster struct {
	Cluster  string
	Withheld string // which user/pipeline was excluded
	Quotas   []float64
	With     []float64
	Without  []float64
}

// Fig10 runs the leave-out experiment over numClusters clusters.
// mode is "user" or "pipeline".
func Fig10(opts Options, mode string, numClusters int) (*Fig10Result, error) {
	if mode != "user" && mode != "pipeline" {
		return nil, fmt.Errorf("experiments: fig10 mode %q", mode)
	}
	res := &Fig10Result{Mode: mode}
	quotas := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1.0}
	for i := 0; i < numClusters; i++ {
		env := BuildEnv(i, opts)
		withheld := secondLargestTCOGroup(env, mode)
		if withheld == "" {
			continue
		}
		keep := func(j *trace.Job) bool {
			if mode == "user" {
				return j.User != withheld
			}
			return j.Pipeline != withheld
		}
		trainWithout := env.Train.Filter(keep)
		if len(trainWithout.Jobs) < 100 {
			continue
		}
		withModel, err := env.TrainModel(opts)
		if err != nil {
			return nil, err
		}
		withoutModel, err := TrainModelOn(trainWithout.Jobs, env.Cost, opts)
		if err != nil {
			return nil, err
		}
		fc := Fig10Cluster{Cluster: env.Cluster, Withheld: withheld, Quotas: quotas}
		for _, frac := range quotas {
			quota := env.PeakUsage * frac
			sw, err := env.RunSuite(quota, SuiteConfig{Model: withModel})
			if err != nil {
				return nil, err
			}
			so, err := env.RunSuite(quota, SuiteConfig{Model: withoutModel})
			if err != nil {
				return nil, err
			}
			fc.With = append(fc.With, sw.TCOPercent(policy.NameAdaptiveRanking))
			fc.Without = append(fc.Without, so.TCOPercent(policy.NameAdaptiveRanking))
		}
		res.Clusters = append(res.Clusters, fc)
	}
	if len(res.Clusters) == 0 {
		return nil, fmt.Errorf("experiments: fig10 found no eligible clusters")
	}
	return res, nil
}

// secondLargestTCOGroup returns the user/pipeline with the
// second-largest total TCO in the cluster's test half.
func secondLargestTCOGroup(env *Env, mode string) string {
	totals := map[string]float64{}
	for _, j := range env.Test.Jobs {
		key := j.User
		if mode == "pipeline" {
			key = j.Pipeline
		}
		totals[key] += env.Cost.TCOHDD(j)
	}
	type kv struct {
		k string
		v float64
	}
	var items []kv
	for k, v := range totals {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].v != items[b].v {
			return items[a].v > items[b].v
		}
		return items[a].k < items[b].k
	})
	if len(items) < 2 {
		return ""
	}
	return items[1].k
}

// MaxRelativeGap returns the largest |with-without| gap relative to the
// with-curve value, across all clusters and quotas.
func (r *Fig10Result) MaxRelativeGap() float64 {
	gap := 0.0
	for _, c := range r.Clusters {
		for i := range c.With {
			if c.With[i] <= 0 {
				continue
			}
			d := c.With[i] - c.Without[i]
			if d < 0 {
				d = -d
			}
			if rel := d / c.With[i]; rel > gap {
				gap = rel
			}
		}
	}
	return gap
}

// Render writes per-cluster with/without curves.
func (r *Fig10Result) Render(w io.Writer) {
	for _, c := range r.Clusters {
		var rows [][]string
		for i, q := range c.Quotas {
			rows = append(rows, []string{
				fmt.Sprintf("%.0f%%", q*100),
				fmt.Sprintf("%.3f", c.With[i]),
				fmt.Sprintf("%.3f", c.Without[i]),
			})
		}
		Table(w, fmt.Sprintf("Fig 10 — new %s generalization, cluster %s (withheld %s)",
			r.Mode, c.Cluster, c.Withheld),
			[]string{"quota", "train with", "train without"}, rows)
	}
	fmt.Fprintf(w, "max relative gap: %.1f%%\n", r.MaxRelativeGap()*100)
}

// Fig16Result reproduces Figure 16 (Appendix C.3): the dynamics of the
// category admission threshold and spillover percentage over the test
// window at four quotas.
type Fig16Result struct {
	Cluster string
	Series  []Fig16Series
}

// Fig16Series is the controller trace at one quota.
type Fig16Series struct {
	QuotaFrac float64
	Points    []core.ACTPoint
	TCOPct    float64
}

// Fig16 records ACT dynamics at the paper's four quota settings.
func Fig16(opts Options) (*Fig16Result, error) {
	env := BuildEnv(0, opts)
	model, err := env.TrainModel(opts)
	if err != nil {
		return nil, err
	}
	res := &Fig16Result{Cluster: env.Cluster}
	for _, frac := range []float64{0.0001, 0.01, 0.1, 0.5} {
		r, trace, err := env.RunRankingWithTrace(env.PeakUsage*frac, model)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Fig16Series{
			QuotaFrac: frac,
			Points:    trace,
			TCOPct:    r.TCOSavingsPercent(),
		})
	}
	return res, nil
}

// MeanACT returns the time-averaged ACT of a series.
func (s *Fig16Series) MeanACT() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += float64(p.ACT)
	}
	return sum / float64(len(s.Points))
}

// Render writes a compact summary per quota (full traces are large).
func (r *Fig16Result) Render(w io.Writer) {
	var rows [][]string
	for _, s := range r.Series {
		maxACT, maxSpill := 0, 0.0
		for _, p := range s.Points {
			if p.ACT > maxACT {
				maxACT = p.ACT
			}
			if p.Spillover > maxSpill {
				maxSpill = p.Spillover
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f%%", s.QuotaFrac*100),
			fmt.Sprintf("%d", len(s.Points)),
			fmt.Sprintf("%.2f", s.MeanACT()),
			fmt.Sprintf("%d", maxACT),
			fmt.Sprintf("%.2f", maxSpill),
			fmt.Sprintf("%.3f", s.TCOPct),
		})
	}
	Table(w, "Fig 16 — adaptive threshold dynamics, cluster "+r.Cluster,
		[]string{"quota", "decisions", "mean ACT", "max ACT", "max spill", "TCO%"}, rows)
}
