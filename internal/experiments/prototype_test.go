package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func protoOpts() Options {
	opts := testOpts()
	opts.GBDTRounds = 10
	return opts
}

func TestFig5PrototypeShape(t *testing.T) {
	res, err := Fig5(protoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.NumShuffleJobs < 500 {
		t.Errorf("only %d shuffle jobs; the paper's prototype ran 1024", res.NumShuffleJobs)
	}
	for _, row := range res.Rows {
		if row.RankingTCO <= row.FirstFitTCO {
			t.Errorf("quota %.0f%%: AdaptiveRanking TCO %.3f <= FirstFit %.3f",
				row.QuotaFrac*100, row.RankingTCO, row.FirstFitTCO)
		}
		if row.RankingTCIO <= 0 {
			t.Errorf("quota %.0f%%: no TCIO savings", row.QuotaFrac*100)
		}
	}
	// AdaptiveRanking must clearly beat FirstFit at both quotas (the
	// paper reports 4.38x at 1% and 1.77x at 20%; our substrate's
	// advantage profile differs but the win must hold).
	for i, row := range res.Rows {
		if row.FirstFitTCO > 0 && row.RankingTCO/row.FirstFitTCO < 1.05 {
			t.Errorf("row %d: ratio %.2f, want > 1.05", i, row.RankingTCO/row.FirstFitTCO)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 5") {
		t.Error("render missing title")
	}
}

func TestFig8Generalization(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment test: skipped in -short mode")
	}
	res, err := Fig8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	home := res.TCOPct["train C0"]
	c3 := res.TCOPct["train C3"]
	c1 := res.TCOPct["train C1"]
	if len(home) != len(res.Quotas) || len(c3) != len(res.Quotas) {
		t.Fatal("curve lengths wrong")
	}
	var homeSum, c3Sum, c1Sum float64
	for i := range res.Quotas {
		homeSum += home[i]
		c3Sum += c3[i]
		c1Sum += c1[i]
	}
	// The pathological cluster's model must transfer worse than the
	// home model; a normal cluster's model should transfer reasonably.
	if c3Sum >= homeSum {
		t.Errorf("C3 (outlier) transfer area %.2f >= home area %.2f", c3Sum, homeSum)
	}
	if c1Sum < homeSum*0.5 {
		t.Errorf("C1 transfer area %.2f below half of home %.2f", c1Sum, homeSum)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 8") {
		t.Error("render missing title")
	}
}

func TestFig10NewUsersAndPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment test: skipped in -short mode")
	}
	for _, mode := range []string{"user", "pipeline"} {
		res, err := Fig10(testOpts(), mode, 2)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if len(res.Clusters) == 0 {
			t.Fatalf("mode %s: no clusters", mode)
		}
		// Leave-out training should track the full model closely: the
		// paper's curves nearly coincide. Allow generous slack since
		// quick-scale models are noisy.
		if gap := res.MaxRelativeGap(); gap > 0.8 {
			t.Errorf("mode %s: max relative gap %.2f too large", mode, gap)
		}
		var buf bytes.Buffer
		res.Render(&buf)
		if !strings.Contains(buf.String(), "Fig 10") {
			t.Error("render missing title")
		}
	}
	if _, err := Fig10(testOpts(), "bogus", 1); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestFig13MixedWorkloads(t *testing.T) {
	res, err := Fig13(protoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 2 quotas x 2 classes
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RankingTCO < row.FirstFitTCO-0.5 {
			t.Errorf("quota %.0f%% class %s: ranking %.3f clearly below firstfit %.3f",
				row.QuotaFrac*100, row.Class, row.RankingTCO, row.FirstFitTCO)
		}
	}
	// Non-framework workloads must also see savings (BYOM generality).
	foundNFW := false
	for _, row := range res.Rows {
		if row.Class == "non-framework" && row.RankingTCO > 0 {
			foundNFW = true
		}
	}
	if !foundNFW {
		t.Error("no non-framework savings recorded")
	}
}

func TestFig14NoRegressions(t *testing.T) {
	res, err := Fig14(protoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 2 quotas x 2 classes x 2 methods
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper: application-level performance improves, no regressions.
	// Allow a tiny tolerance for scheduling noise.
	if min := res.MinSavings(); min < -1 {
		t.Errorf("worst runtime savings %.2f%%: regression beyond tolerance", min)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 14") {
		t.Error("render missing title")
	}
}

func TestFig15SensitivityBand(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment test: skipped in -short mode")
	}
	opts := testOpts()
	opts.Days = 3
	opts.Users = 6
	res, err := Fig15(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Combos != 27 {
		t.Fatalf("combos = %d, want 27", res.Combos)
	}
	for i := range res.Quotas {
		if res.MinPct[i] > res.MaxPct[i] {
			t.Fatalf("band inverted at quota %.2f", res.Quotas[i])
		}
	}
	// Paper: "our solution is not sensitive" — the band should be
	// narrow relative to the achieved savings at mid quotas.
	mid := len(res.Quotas) / 2
	if res.MaxPct[mid] > 0 {
		width := res.MaxPct[mid] - res.MinPct[mid]
		if width > res.MaxPct[mid]*0.8 {
			t.Errorf("band width %.3f vs level %.3f: too sensitive", width, res.MaxPct[mid])
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 15") {
		t.Error("render missing title")
	}
}
