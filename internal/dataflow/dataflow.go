// Package dataflow is a miniature distributed data processing framework
// in the mold of Apache Beam (Section 2.1): pipelines are chains of
// stages, GroupByKey-style stages trigger shuffle jobs, and shuffle
// jobs move data through intermediate files in three steps — workers
// write raw intermediate files, sorters organize them into sorted
// files, and workers read the required data back (Appendix B). Work is
// divided into buckets assigned to workers; shards are written as
// stripes for parallelism.
//
// The executor runs pipelines in virtual time against a dfs cluster and
// implements the paper's BYOM integration point: before opening files
// for writing, the framework computes the job's features, asks the
// workload's category model for an importance hint, and passes the hint
// to the storage layer with the file create.
package dataflow

import (
	"fmt"
	"math"

	"repro/internal/dfs"
	"repro/internal/trace"
)

// StageKind distinguishes computation-only stages from shuffles.
type StageKind int

const (
	// ParDo is an element-wise computation stage (no shuffle).
	ParDo StageKind = iota
	// GroupByKey exchanges data between workers via a shuffle job.
	GroupByKey
)

// ShuffleProfile describes the I/O behaviour of one shuffle stage
// relative to its input bytes.
type ShuffleProfile struct {
	// SizeFactor scales stage input bytes to the intermediate-file
	// footprint (1 = same size).
	SizeFactor float64
	// WriteAmp is total bytes written per footprint byte (>= 1: raw
	// files once, plus sorter output).
	WriteAmp float64
	// ReadFactor is bytes read back per footprint byte in the retrieval
	// step (hot shuffles re-read many times).
	ReadFactor float64
	// ReadOpBytes is the mean retrieval read size.
	ReadOpBytes float64
	// CacheHitFrac is the DRAM hit fraction for HDD reads.
	CacheHitFrac float64
	// RetainSec keeps the intermediate files alive after the retrieval
	// step completes (downstream stages may re-read them; batch
	// pipelines retain outputs far longer than interactive ones —
	// the lifetime diversity of the paper's Fig. 1).
	RetainSec float64
}

// DefaultShuffleProfile is a moderate shuffle.
func DefaultShuffleProfile() ShuffleProfile {
	return ShuffleProfile{
		SizeFactor:   1,
		WriteAmp:     2,
		ReadFactor:   1.5,
		ReadOpBytes:  256 * 1024,
		CacheHitFrac: 0.3,
	}
}

// Stage is one node of the pipeline graph.
type Stage struct {
	Name    string
	Kind    StageKind
	Shuffle ShuffleProfile // meaningful for GroupByKey stages
	// OutputFactor scales bytes flowing to the next stage.
	OutputFactor float64
}

// Pipeline is a chain of stages (the data flow graph of Fig. 3).
type Pipeline struct {
	Name   string
	User   string
	Stages []Stage
}

// Builder assembles pipelines fluently.
type Builder struct {
	p Pipeline
}

// NewPipeline starts a builder.
func NewPipeline(name, user string) *Builder {
	return &Builder{p: Pipeline{Name: name, User: user}}
}

// ParDo appends a computation stage.
func (b *Builder) ParDo(name string) *Builder {
	b.p.Stages = append(b.p.Stages, Stage{Name: name, Kind: ParDo, OutputFactor: 1})
	return b
}

// ParDoScale appends a computation stage that scales its output bytes.
func (b *Builder) ParDoScale(name string, outputFactor float64) *Builder {
	b.p.Stages = append(b.p.Stages, Stage{Name: name, Kind: ParDo, OutputFactor: outputFactor})
	return b
}

// GroupByKey appends a shuffle stage.
func (b *Builder) GroupByKey(name string, prof ShuffleProfile) *Builder {
	b.p.Stages = append(b.p.Stages, Stage{Name: name, Kind: GroupByKey, Shuffle: prof, OutputFactor: 1})
	return b
}

// Build finalizes the pipeline.
func (b *Builder) Build() (*Pipeline, error) {
	if b.p.Name == "" || b.p.User == "" {
		return nil, fmt.Errorf("dataflow: pipeline needs a name and user")
	}
	if len(b.p.Stages) == 0 {
		return nil, fmt.Errorf("dataflow: pipeline %q has no stages", b.p.Name)
	}
	for _, s := range b.p.Stages {
		if s.Kind == GroupByKey {
			if s.Shuffle.SizeFactor <= 0 || s.Shuffle.WriteAmp < 1 ||
				s.Shuffle.ReadFactor < 0 || s.Shuffle.ReadOpBytes <= 0 ||
				s.Shuffle.CacheHitFrac < 0 || s.Shuffle.CacheHitFrac > 1 ||
				s.Shuffle.RetainSec < 0 {
				return nil, fmt.Errorf("dataflow: stage %q has invalid shuffle profile", s.Name)
			}
		}
	}
	p := b.p
	return &p, nil
}

// WorkloadSpec is one execution of a pipeline.
type WorkloadSpec struct {
	Pipeline   *Pipeline
	InputBytes float64
	NumWorkers int
	// WorkerThreads is the per-worker parallelism (bucket sizing).
	WorkerThreads int
	// RecordBytes is the mean record size (for records_written).
	RecordBytes float64
	// ComputeSecPerGiB models per-stage CPU work alongside I/O.
	ComputeSecPerGiB float64
}

// Validate checks the spec.
func (s *WorkloadSpec) Validate() error {
	switch {
	case s.Pipeline == nil:
		return fmt.Errorf("dataflow: spec has no pipeline")
	case s.InputBytes <= 0:
		return fmt.Errorf("dataflow: input bytes %g", s.InputBytes)
	case s.NumWorkers < 1:
		return fmt.Errorf("dataflow: %d workers", s.NumWorkers)
	case s.WorkerThreads < 1:
		return fmt.Errorf("dataflow: %d worker threads", s.WorkerThreads)
	case s.RecordBytes <= 0:
		return fmt.Errorf("dataflow: record bytes %g", s.RecordBytes)
	}
	return nil
}

// Waiter advances a virtual clock between execution phases. When an
// executor runs under a discrete-event scheduler (the prototype
// deployment), waiting at phase boundaries interleaves concurrent
// executions in correct global time order so their files contend for
// SSD space at the right instants.
type Waiter interface {
	WaitUntil(t float64)
}

// Hinter is the application-layer model interface: given the job's
// decision-time features it returns the importance category passed to
// the storage layer. A nil Hinter sends category hints of 0.
type Hinter interface {
	Hint(j *trace.Job) int
}

// HinterFunc adapts a function to the Hinter interface.
type HinterFunc func(j *trace.Job) int

// Hint implements Hinter.
func (f HinterFunc) Hint(j *trace.Job) int { return f(j) }

// ShuffleRecord reports one executed shuffle job.
type ShuffleRecord struct {
	// Job is the realized shuffle-job record (sizes and I/O measured
	// during execution; features as seen at decision time).
	Job *trace.Job
	// Category is the hint the application layer attached.
	Category int
	// FracOnSSD is the byte fraction the caching server placed on SSD.
	FracOnSSD  float64
	StartedAt  float64
	FinishedAt float64
}

// Report summarizes one workload execution.
type Report struct {
	Pipeline   string
	Shuffles   []ShuffleRecord
	StartedAt  float64
	FinishedAt float64
}

// Runtime returns the end-to-end execution time.
func (r *Report) Runtime() float64 { return r.FinishedAt - r.StartedAt }

// history accumulates per-template execution history, mirroring the
// feature group A the production framework exposes.
type history struct {
	tcio, size, lifetime, density float64
	runs                          int
}

// Executor runs workloads against a dfs cluster in virtual time.
type Executor struct {
	client  *dfs.Client
	hinter  Hinter
	hist    map[string]*history
	seq     int
	deletes *DeleteScheduler
}

// NewExecutor builds an executor. hinter may be nil (no model: all
// hints are category 0).
func NewExecutor(client *dfs.Client, hinter Hinter) *Executor {
	return &Executor{client: client, hinter: hinter, hist: map[string]*history{}}
}

// UseDeleteScheduler defers this executor's file deletions to the
// shared scheduler so overlapping executions contend for SSD space.
func (e *Executor) UseDeleteScheduler(ds *DeleteScheduler) { e.deletes = ds }

// Run executes the workload starting at the given virtual time.
func (e *Executor) Run(spec WorkloadSpec, startAt float64) (*Report, error) {
	return e.RunWith(spec, startAt, nil)
}

// RunWith is Run under a discrete-event scheduler: the waiter is
// consulted at every phase boundary so concurrent executions interleave
// in global virtual-time order. A nil waiter runs the execution
// standalone (phases computed back to back).
func (e *Executor) RunWith(spec WorkloadSpec, startAt float64, w Waiter) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Pipeline: spec.Pipeline.Name, StartedAt: startAt}
	now := startAt
	bytes := spec.InputBytes
	computePerByte := spec.ComputeSecPerGiB / (1 << 30)

	// Under a scheduler, retained files are released by this process at
	// their own due times without blocking the pipeline's stages.
	var pending *DeleteScheduler
	if w != nil {
		pending = NewDeleteScheduler()
	}

	for si, stage := range spec.Pipeline.Stages {
		switch stage.Kind {
		case ParDo:
			// Pure computation: advance time by the parallel work.
			work := bytes * computePerByte / float64(spec.NumWorkers*spec.WorkerThreads)
			now += work
			if w != nil {
				w.WaitUntil(now)
				if err := pending.Apply(now); err != nil {
					return nil, err
				}
			}
			bytes *= stage.OutputFactor
		case GroupByKey:
			rec, err := e.runShuffle(spec, si, stage, bytes, now, w, pending)
			if err != nil {
				return nil, err
			}
			rep.Shuffles = append(rep.Shuffles, *rec)
			now = rec.FinishedAt
			bytes *= stage.OutputFactor
		default:
			return nil, fmt.Errorf("dataflow: unknown stage kind %d", stage.Kind)
		}
	}
	rep.FinishedAt = now
	// Linger until the retained files expire (the execution itself is
	// finished; only the cleanup outlives it).
	if w != nil {
		for pending.Pending() > 0 {
			due := pending.NextDue()
			w.WaitUntil(due)
			if err := pending.Apply(due); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// runShuffle executes the three-step shuffle: write raw intermediate
// files, sort, read back.
func (e *Executor) runShuffle(spec WorkloadSpec, stageIdx int, stage Stage, inputBytes, now float64, w Waiter, pending *DeleteScheduler) (*ShuffleRecord, error) {
	prof := stage.Shuffle
	footprint := inputBytes * prof.SizeFactor
	if footprint <= 0 {
		return nil, fmt.Errorf("dataflow: shuffle %q with zero footprint", stage.Name)
	}
	e.seq++
	jobID := fmt.Sprintf("%s-%s-%d", spec.Pipeline.Name, stage.Name, e.seq)
	key := spec.Pipeline.Name + "/" + stage.Name

	// Decision-time job record: features only (Table 2). Measurements
	// are filled in as execution proceeds.
	j := &trace.Job{
		ID:         jobID,
		User:       spec.Pipeline.User,
		Pipeline:   spec.Pipeline.Name,
		Step:       stage.Name,
		ArrivalSec: now,
		Meta: trace.Metadata{
			BuildTargetName: fmt.Sprintf("//pipelines/%s:%s_main", spec.Pipeline.Name, stage.Name),
			ExecutionName:   fmt.Sprintf("com.dataflow.%s.launcher.Main", spec.Pipeline.Name),
			PipelineName:    fmt.Sprintf("org_%s.%s.prod", spec.Pipeline.User, spec.Pipeline.Name),
			StepName:        fmt.Sprintf("%s-open-shuffle%d", stage.Name, stageIdx),
			UserName:        fmt.Sprintf("GroupByKey-%d", stageIdx),
		},
		Resources: e.resources(spec, footprint),
	}
	if h := e.hist[key]; h != nil && h.runs > 0 {
		n := float64(h.runs)
		j.History = trace.History{
			AvgTCIO:      h.tcio / n,
			AvgSizeBytes: h.size / n,
			AvgLifetime:  h.lifetime / n,
			AvgIODensity: h.density / n,
			NumRuns:      h.runs,
		}
	}

	// BYOM integration point: model inference happens inside the job
	// process before opening files for writing; the prediction is
	// passed to the storage layer with the create calls. One shuffle
	// job comprises one intermediate file per worker (the unit the
	// caching servers place), all carrying the job's hint.
	category := 0
	if e.hinter != nil {
		category = e.hinter.Hint(j)
	}
	if e.deletes != nil {
		// Release any earlier executions' expired files first so the
		// creates see the correct SSD occupancy.
		if err := e.deletes.Apply(now); err != nil {
			return nil, err
		}
	}
	perWorker := footprint / float64(spec.NumWorkers)
	handles := make([]*dfs.FileHandle, spec.NumWorkers)
	var fracSum float64
	for wk := range handles {
		h, err := e.client.Create(fmt.Sprintf("%s.shard%03d", jobID, wk), perWorker,
			dfs.Hint{JobID: jobID, Category: category, SizeBytes: perWorker}, now)
		if err != nil {
			return nil, err
		}
		handles[wk] = h
		frac, err := h.FracOnSSD()
		if err != nil {
			return nil, err
		}
		fracSum += frac
	}
	fracSSD := fracSum / float64(spec.NumWorkers)

	stripeBytes := 1 << 20 // writers pack data into 1 MiB stripes
	computePerByte := spec.ComputeSecPerGiB / (1 << 30)

	// Step 1: workers write raw intermediate files in parallel.
	phase1 := now
	for _, h := range handles {
		done, err := h.Write(now, perWorker, float64(stripeBytes))
		if err != nil {
			return nil, err
		}
		compute := now + perWorker*computePerByte/float64(spec.WorkerThreads)
		phase1 = math.Max(phase1, math.Max(done, compute))
	}
	if w != nil {
		w.WaitUntil(phase1)
	}

	// Step 2: sorters read the raw files and write sorted files.
	sortWrite := footprint * (prof.WriteAmp - 1)
	phase2 := phase1
	if sortWrite > 0 {
		perSortWrite := sortWrite / float64(spec.NumWorkers)
		for _, h := range handles {
			rdone, err := h.Read(phase1, perWorker, 4<<20, prof.CacheHitFrac)
			if err != nil {
				return nil, err
			}
			wdone, err := h.Write(rdone, perSortWrite, float64(stripeBytes))
			if err != nil {
				return nil, err
			}
			phase2 = math.Max(phase2, wdone)
		}
	}
	if w != nil {
		w.WaitUntil(phase2)
	}

	// Step 3: workers retrieve the required data back into memory.
	readBack := footprint * prof.ReadFactor
	phase3 := phase2
	if readBack > 0 {
		perReader := readBack / float64(spec.NumWorkers)
		for _, h := range handles {
			done, err := h.Read(phase2, perReader, prof.ReadOpBytes, prof.CacheHitFrac)
			if err != nil {
				return nil, err
			}
			compute := phase2 + perReader*computePerByte/float64(spec.WorkerThreads)
			phase3 = math.Max(phase3, math.Max(done, compute))
		}
	}

	deleteAt := phase3 + prof.RetainSec
	switch {
	case w != nil:
		// The shuffle completes at phase3; the retained files are
		// queued on the per-run scheduler and released at deleteAt
		// without blocking downstream stages.
		w.WaitUntil(phase3)
		for _, h := range handles {
			pending.Schedule(deleteAt, h)
		}
		if err := pending.Apply(phase3); err != nil {
			return nil, err
		}
	case e.deletes != nil:
		for _, h := range handles {
			e.deletes.Schedule(deleteAt, h)
		}
	default:
		for _, h := range handles {
			if err := h.Delete(); err != nil {
				return nil, err
			}
		}
	}

	// Fill the realized measurements.
	sortRead := 0.0
	if sortWrite > 0 {
		sortRead = footprint
	}
	j.LifetimeSec = math.Max(deleteAt-now, 1)
	j.SizeBytes = footprint
	j.WriteBytes = footprint * prof.WriteAmp
	j.ReadBytes = readBack + sortRead
	j.AvgReadSizeBytes = prof.ReadOpBytes
	j.CacheHitFrac = prof.CacheHitFrac

	// Update the framework's history for this template.
	h := e.hist[key]
	if h == nil {
		h = &history{}
		e.hist[key] = h
	}
	effReadOps := j.ReadBytes / j.AvgReadSizeBytes * (1 - j.CacheHitFrac)
	effWriteOps := j.WriteBytes / (1 << 20)
	h.tcio += (effReadOps + effWriteOps) / j.LifetimeSec / 150
	h.size += j.SizeBytes
	h.lifetime += j.LifetimeSec
	h.density += j.IODensity()
	h.runs++

	return &ShuffleRecord{
		Job:        j,
		Category:   category,
		FracOnSSD:  fracSSD,
		StartedAt:  now,
		FinishedAt: phase3,
	}, nil
}

// resources derives the scheduler-assigned resources (feature group C).
func (e *Executor) resources(spec WorkloadSpec, footprint float64) trace.Resources {
	buckets := spec.NumWorkers * spec.WorkerThreads
	shards := buckets * 2
	return trace.Resources{
		BucketSizingInitialNumStripes: 4,
		BucketSizingNumShards:         shards,
		BucketSizingNumWorkerThreads:  spec.WorkerThreads,
		BucketSizingNumWorkers:        spec.NumWorkers,
		InitialNumBuckets:             buckets,
		NumBuckets:                    buckets,
		RecordsWritten:                int64(footprint / spec.RecordBytes),
		RequestedNumShards:            shards,
	}
}
