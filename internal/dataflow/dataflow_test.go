package dataflow

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/trace"
)

func buildPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline("wordcount", "alice").
		ParDo("parse").
		GroupByKey("by-word", DefaultShuffleProfile()).
		ParDoScale("count", 0.1).
		GroupByKey("by-count", ShuffleProfile{
			SizeFactor: 1, WriteAmp: 1.5, ReadFactor: 4,
			ReadOpBytes: 64 * 1024, CacheHitFrac: 0.2,
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func spec(t *testing.T, p *Pipeline) WorkloadSpec {
	t.Helper()
	return WorkloadSpec{
		Pipeline:         p,
		InputBytes:       1 << 30,
		NumWorkers:       8,
		WorkerThreads:    4,
		RecordBytes:      512,
		ComputeSecPerGiB: 2,
	}
}

func newEnv(t *testing.T, capacity float64, d dfs.Decider) (*dfs.Cluster, *Executor) {
	t.Helper()
	cluster, err := dfs.NewCluster(dfs.DefaultConfig(capacity), d)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, NewExecutor(dfs.NewClient(cluster), nil)
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewPipeline("", "u").ParDo("x").Build(); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewPipeline("p", "u").Build(); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, err := NewPipeline("p", "u").GroupByKey("s", ShuffleProfile{}).Build(); err == nil {
		t.Error("invalid shuffle profile accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	p := buildPipeline(t)
	good := spec(t, p)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []func(*WorkloadSpec){
		func(s *WorkloadSpec) { s.Pipeline = nil },
		func(s *WorkloadSpec) { s.InputBytes = 0 },
		func(s *WorkloadSpec) { s.NumWorkers = 0 },
		func(s *WorkloadSpec) { s.WorkerThreads = 0 },
		func(s *WorkloadSpec) { s.RecordBytes = 0 },
	}
	for i, mutate := range cases {
		s := spec(t, p)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRunProducesShuffleRecords(t *testing.T) {
	p := buildPipeline(t)
	_, ex := newEnv(t, 1e12, dfs.StaticDecider(true))
	rep, err := ex.Run(spec(t, p), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shuffles) != 2 {
		t.Fatalf("shuffles = %d, want 2", len(rep.Shuffles))
	}
	if rep.Runtime() <= 0 {
		t.Errorf("runtime = %g", rep.Runtime())
	}
	first := rep.Shuffles[0]
	if first.Job.SizeBytes != 1<<30 {
		t.Errorf("first shuffle footprint = %g, want %d", first.Job.SizeBytes, 1<<30)
	}
	// Second shuffle input is scaled by the ParDoScale(0.1).
	second := rep.Shuffles[1]
	if math.Abs(second.Job.SizeBytes-0.1*(1<<30)) > 1 {
		t.Errorf("second shuffle footprint = %g, want %g", second.Job.SizeBytes, 0.1*float64(1<<30))
	}
	if first.FracOnSSD != 1 {
		t.Errorf("frac on SSD = %g with huge capacity", first.FracOnSSD)
	}
	// Realized I/O: writes = footprint * WriteAmp.
	if math.Abs(first.Job.WriteBytes-2*(1<<30)) > 1 {
		t.Errorf("writes = %g, want %g", first.Job.WriteBytes, 2.0*(1<<30))
	}
	// Reads = read-back + sorter read.
	wantReads := 1.5*(1<<30) + 1<<30
	if math.Abs(first.Job.ReadBytes-wantReads) > 1 {
		t.Errorf("reads = %g, want %g", first.Job.ReadBytes, wantReads)
	}
	if err := first.Job.Validate(); err != nil {
		t.Errorf("realized job invalid: %v", err)
	}
}

func TestRunReleasesSSDSpace(t *testing.T) {
	p := buildPipeline(t)
	cluster, ex := newEnv(t, 1e12, dfs.StaticDecider(true))
	if _, err := ex.Run(spec(t, p), 0); err != nil {
		t.Fatal(err)
	}
	if used := cluster.SSDUsed(); used != 0 {
		t.Errorf("SSD still holds %g bytes after execution", used)
	}
	m := cluster.Metrics()
	// One intermediate file per worker per shuffle: 2 shuffles x 8.
	if m.FilesCreated != 16 || m.FilesDeleted != 16 {
		t.Errorf("metrics %+v", m)
	}
}

func TestRunHintsReachStorage(t *testing.T) {
	p := buildPipeline(t)
	cluster, err := dfs.NewCluster(dfs.DefaultConfig(1e12), dfs.ThresholdDecider(5))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	hinter := HinterFunc(func(j *trace.Job) int {
		calls++
		// Features must be available at hint time; measurements not yet.
		if j.Pipeline == "" || j.Resources.BucketSizingNumWorkers == 0 {
			t.Error("hint called without decision-time features")
		}
		if j.SizeBytes != 0 {
			t.Error("hint saw post-execution measurements")
		}
		if strings.HasSuffix(j.Step, "by-word") {
			return 9 // admitted
		}
		return 2 // rejected by ThresholdDecider(5)
	})
	ex := NewExecutor(dfs.NewClient(cluster), hinter)
	rep, err := ex.Run(spec(t, p), 0)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("hinter called %d times, want 2", calls)
	}
	if rep.Shuffles[0].FracOnSSD != 1 {
		t.Errorf("admitted shuffle frac = %g, want 1", rep.Shuffles[0].FracOnSSD)
	}
	if rep.Shuffles[1].FracOnSSD != 0 {
		t.Errorf("rejected shuffle frac = %g, want 0", rep.Shuffles[1].FracOnSSD)
	}
}

func TestHistoryAccumulatesAcrossRuns(t *testing.T) {
	p := buildPipeline(t)
	_, ex := newEnv(t, 1e12, dfs.StaticDecider(true))
	s := spec(t, p)
	rep1, err := ex.Run(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Shuffles[0].Job.History.NumRuns != 0 {
		t.Error("first run should have no history")
	}
	rep2, err := ex.Run(s, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	h := rep2.Shuffles[0].Job.History
	if h.NumRuns != 1 {
		t.Fatalf("second run NumRuns = %d, want 1", h.NumRuns)
	}
	if h.AvgSizeBytes != rep1.Shuffles[0].Job.SizeBytes {
		t.Errorf("history size = %g, want %g", h.AvgSizeBytes, rep1.Shuffles[0].Job.SizeBytes)
	}
}

func TestRuntimeFasterOnSSDForHotWorkload(t *testing.T) {
	// A read-heavy small-op pipeline should run much faster when its
	// shuffles are placed on SSD (Fig. 14's effect).
	p, err := NewPipeline("hotquery", "bob").
		GroupByKey("join", ShuffleProfile{
			SizeFactor: 1, WriteAmp: 1.2, ReadFactor: 20,
			ReadOpBytes: 32 * 1024, CacheHitFrac: 0.1,
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s := WorkloadSpec{Pipeline: p, InputBytes: 1 << 28, NumWorkers: 4, WorkerThreads: 4, RecordBytes: 512}

	_, exSSD := newEnv(t, 1e12, dfs.StaticDecider(true))
	repSSD, err := exSSD.Run(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, exHDD := newEnv(t, 1e12, dfs.StaticDecider(false))
	repHDD, err := exHDD.Run(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if repSSD.Runtime()*2 > repHDD.Runtime() {
		t.Errorf("SSD runtime %.1fs vs HDD %.1fs: want >= 2x speedup",
			repSSD.Runtime(), repHDD.Runtime())
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	_, ex := newEnv(t, 1e12, dfs.StaticDecider(true))
	if _, err := ex.Run(WorkloadSpec{}, 0); err == nil {
		t.Error("invalid spec accepted")
	}
}
