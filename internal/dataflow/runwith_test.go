package dataflow

import (
	"math"
	"testing"

	"repro/internal/desched"
	"repro/internal/dfs"
)

// TestRunWithMatchesRunStandalone: under a scheduler with a single
// process, RunWith must produce the same shuffle records as Run.
func TestRunWithMatchesRunStandalone(t *testing.T) {
	p := buildPipeline(t)
	s := spec(t, p)

	_, exA := newEnv(t, 1e12, dfs.StaticDecider(true))
	repA, err := exA.Run(s, 100)
	if err != nil {
		t.Fatal(err)
	}

	clusterB, _ := dfs.NewCluster(dfs.DefaultConfig(1e12), dfs.StaticDecider(true))
	exB := NewExecutor(dfs.NewClient(clusterB), nil)
	var repB *Report
	des := desched.New()
	des.Spawn(100, func(pr *desched.Proc) {
		var err error
		repB, err = exB.RunWith(s, pr.Now(), pr)
		if err != nil {
			t.Error(err)
		}
	})
	des.Run()

	if repB == nil {
		t.Fatal("scheduled run produced nothing")
	}
	if len(repA.Shuffles) != len(repB.Shuffles) {
		t.Fatalf("shuffle counts differ: %d vs %d", len(repA.Shuffles), len(repB.Shuffles))
	}
	for i := range repA.Shuffles {
		a, b := repA.Shuffles[i], repB.Shuffles[i]
		if math.Abs(a.Job.SizeBytes-b.Job.SizeBytes) > 1 ||
			math.Abs(a.Job.WriteBytes-b.Job.WriteBytes) > 1 {
			t.Errorf("shuffle %d differs between Run and RunWith", i)
		}
	}
	if used := clusterB.SSDUsed(); used != 0 {
		t.Errorf("SSD holds %g bytes after scheduled run", used)
	}
}

// TestRetentionHoldsSpaceWithoutBlockingPipeline: a retained shuffle
// keeps its SSD allocation past the stage's completion, and the
// pipeline's own runtime is unaffected by retention.
func TestRetentionHoldsSpaceWithoutBlockingPipeline(t *testing.T) {
	prof := DefaultShuffleProfile()
	prof.RetainSec = 10000
	retained, err := NewPipeline("retained", "u").
		GroupByKey("s", prof).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	noRetain := DefaultShuffleProfile()
	plain, err := NewPipeline("plain", "u").
		GroupByKey("s", noRetain).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p *Pipeline) WorkloadSpec {
		return WorkloadSpec{Pipeline: p, InputBytes: 1 << 28, NumWorkers: 4,
			WorkerThreads: 2, RecordBytes: 512}
	}

	// Scheduled run: a probe process samples SSD usage after the
	// retained pipeline's shuffle finished but before retention expires.
	cluster, _ := dfs.NewCluster(dfs.DefaultConfig(1e12), dfs.StaticDecider(true))
	ex := NewExecutor(dfs.NewClient(cluster), nil)
	des := desched.New()
	var repRetained *Report
	des.Spawn(0, func(pr *desched.Proc) {
		var err error
		repRetained, err = ex.RunWith(mk(retained), 0, pr)
		if err != nil {
			t.Error(err)
		}
	})
	var usedMid float64 = -1
	des.Spawn(5000, func(pr *desched.Proc) {
		usedMid = cluster.SSDUsed()
	})
	des.Run()

	if repRetained == nil {
		t.Fatal("no report")
	}
	if repRetained.Runtime() > 4000 {
		t.Errorf("runtime %.0fs includes retention (should not)", repRetained.Runtime())
	}
	if usedMid <= 0 {
		t.Errorf("retained file not holding SSD space at t=5000 (used=%g)", usedMid)
	}
	if used := cluster.SSDUsed(); used != 0 {
		t.Errorf("space not released after retention: %g", used)
	}

	// Runtime parity: retention must not slow the pipeline itself.
	cluster2, _ := dfs.NewCluster(dfs.DefaultConfig(1e12), dfs.StaticDecider(true))
	ex2 := NewExecutor(dfs.NewClient(cluster2), nil)
	repPlain, err := ex2.Run(mk(plain), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(repPlain.Runtime()-repRetained.Runtime()) > repPlain.Runtime()*0.05+1 {
		t.Errorf("retention changed pipeline runtime: %.1fs vs %.1fs",
			repRetained.Runtime(), repPlain.Runtime())
	}
}

// TestNegativeRetentionRejected: builder validation.
func TestNegativeRetentionRejected(t *testing.T) {
	prof := DefaultShuffleProfile()
	prof.RetainSec = -5
	if _, err := NewPipeline("p", "u").GroupByKey("s", prof).Build(); err == nil {
		t.Error("negative retention accepted")
	}
}
