package dataflow

import (
	"container/heap"

	"repro/internal/dfs"
)

// DeleteScheduler defers file deletions to their virtual due time.
// Sequentially-run executions with overlapping virtual time windows
// share one scheduler so that an earlier execution's intermediate files
// still occupy SSD space when a later, overlapping execution creates
// its own — the contention that drives spillover in a test deployment.
type DeleteScheduler struct {
	pq deleteHeap
}

type pendingDelete struct {
	at     float64
	handle *dfs.FileHandle
}

type deleteHeap []pendingDelete

func (h deleteHeap) Len() int            { return len(h) }
func (h deleteHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h deleteHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deleteHeap) Push(x interface{}) { *h = append(*h, x.(pendingDelete)) }
func (h *deleteHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewDeleteScheduler returns an empty scheduler.
func NewDeleteScheduler() *DeleteScheduler { return &DeleteScheduler{} }

// Schedule queues a deletion at the given virtual time.
func (d *DeleteScheduler) Schedule(at float64, h *dfs.FileHandle) {
	heap.Push(&d.pq, pendingDelete{at: at, handle: h})
}

// Apply deletes every file whose due time is <= now.
func (d *DeleteScheduler) Apply(now float64) error {
	for d.pq.Len() > 0 && d.pq[0].at <= now {
		p := heap.Pop(&d.pq).(pendingDelete)
		if err := p.handle.Delete(); err != nil {
			return err
		}
	}
	return nil
}

// Flush deletes all remaining files regardless of due time.
func (d *DeleteScheduler) Flush() error {
	for d.pq.Len() > 0 {
		p := heap.Pop(&d.pq).(pendingDelete)
		if err := p.handle.Delete(); err != nil {
			return err
		}
	}
	return nil
}

// Pending reports the queued deletion count.
func (d *DeleteScheduler) Pending() int { return d.pq.Len() }

// NextDue returns the earliest queued deletion time (call only when
// Pending() > 0).
func (d *DeleteScheduler) NextDue() float64 { return d.pq[0].at }
