package scenario

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/online"
	"repro/internal/policy"
	"repro/internal/rebalance"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Stats is a scenario run's machine-readable measurement record: the
// threshold gate checks it and the bench history archives it. TCO /
// TCIO / Retrains / Swaps are deterministic in the spec; JobsPerSec,
// P99Ms and WallMs are wall-clock measurements and are excluded from
// golden reports and the determinism contract.
type Stats struct {
	// Jobs is the evaluated job count (test-half jobs; fleet: total
	// test jobs across clusters).
	Jobs int `json:"jobs"`
	// TCOPct / TCIOPct are the run's savings vs the all-HDD baseline.
	TCOPct  float64 `json:"tco_pct"`
	TCIOPct float64 `json:"tcio_pct"`
	// Retrains / Swaps count online-loop activity (0 elsewhere).
	Retrains int64 `json:"retrains"`
	Swaps    int64 `json:"swaps"`
	// JobsPerSec is evaluated jobs over the run's wall time.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// P99Ms is the p99 per-decision latency in ms (serve pipeline; 0
	// where not measured).
	P99Ms float64 `json:"p99_ms"`
	// WallMs is the run's wall time in ms.
	WallMs float64 `json:"wall_ms"`
}

// Deterministic returns a copy with the wall-clock-derived fields
// zeroed: the part of Stats that must be identical across runs and
// worker counts.
func (s Stats) Deterministic() Stats {
	s.JobsPerSec, s.P99Ms, s.WallMs = 0, 0, 0
	return s
}

// RunResult is one executed scenario: the deterministic rendered
// report plus the measured stats.
type RunResult struct {
	Report []byte
	Stats  Stats
}

// Execute runs a validated spec through its pipeline and renders the
// report. The report bytes are deterministic in the spec; Stats
// additionally carries the wall-clock measurements.
func Execute(spec *Spec) (*RunResult, error) {
	start := time.Now()
	var (
		res *RunResult
		err error
	)
	switch spec.Pipeline {
	case PipelineSim:
		res, err = runSim(spec)
	case PipelineServe:
		res, err = runServe(spec)
	case PipelineOnline:
		res, err = runOnline(spec)
	case PipelineFleet:
		res, err = runFleet(spec)
	case PipelineRebalance:
		res, err = runRebalance(spec)
	default:
		err = fmt.Errorf("scenario %s: unknown pipeline %q", spec.Name, spec.Pipeline)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	wall := time.Since(start)
	res.Stats.WallMs = float64(wall.Microseconds()) / 1000
	if wall > 0 {
		res.Stats.JobsPerSec = float64(res.Stats.Jobs) / wall.Seconds()
	}
	return res, nil
}

// env is the shared setup of the trace-driven pipelines: the merged
// generated trace split at the spec's cut, a model trained on the
// first part, and the quota sized off the test half's peak.
type env struct {
	train, test *trace.Trace
	model       *core.CategoryModel
	cm          *cost.Model
	quota       float64
}

// trainSeed resolves the training seed: explicit, else the scenario's
// primary generation seed.
func (s *Spec) trainSeed() int64 {
	if s.Train.Seed != 0 {
		return s.Train.Seed
	}
	if s.Fleet != nil {
		return s.Fleet.Seed
	}
	return s.Trace.Segments[0].Seed
}

// trainOptions maps TrainSpec onto core training options.
func (s *Spec) trainOptions() core.TrainOptions {
	topts := core.DefaultTrainOptions()
	topts.NumCategories = s.Train.categories()
	topts.GBDT.NumRounds = s.Train.rounds()
	topts.GBDT.Seed = s.trainSeed()
	return topts
}

// buildSegment realizes one segment spec as a generated, time-shifted
// trace.
func buildSegment(g *SegmentSpec, idx int) *trace.Trace {
	cluster := g.Cluster
	if cluster == "" {
		cluster = fmt.Sprintf("s%d", idx)
	}
	cfg := trace.DefaultGeneratorConfig(cluster, g.Seed)
	cfg.NumUsers = g.Users
	cfg.DurationSec = g.Days * 24 * 3600
	if g.MinPipes > 0 {
		cfg.MinPipes = g.MinPipes
	}
	if g.MaxPipes > 0 {
		cfg.MaxPipes = g.MaxPipes
	}
	if g.MinSteps > 0 {
		cfg.MinSteps = g.MinSteps
	}
	if g.MaxSteps > 0 {
		cfg.MaxSteps = g.MaxSteps
	}
	// A raised min with a defaulted max would invert the range the
	// generator draws from; lift the max instead of failing.
	if cfg.MinPipes > cfg.MaxPipes {
		cfg.MaxPipes = cfg.MinPipes
	}
	if cfg.MinSteps > cfg.MaxSteps {
		cfg.MaxSteps = cfg.MinSteps
	}
	if g.Weights != nil {
		cfg.ArchetypeWeights = g.Weights
	}
	if g.LoadScale > 0 {
		cfg.LoadScale = g.LoadScale
	}
	if g.NoiseScale > 0 {
		cfg.NoiseScale = g.NoiseScale
	}
	seg := trace.NewGenerator(cfg).Generate()
	if g.OffsetDays > 0 {
		seg.Shift(g.OffsetDays * 24 * 3600)
	}
	return seg
}

// buildEnv generates the spec's segments, merges them on the shared
// timeline, splits train/test at the spec's cut and trains the model.
func buildEnv(spec *Spec) (*env, error) {
	ts := spec.Trace
	merged := &trace.Trace{Cluster: spec.Name}
	for i := range ts.Segments {
		seg := buildSegment(&ts.Segments[i], i)
		merged.Jobs = append(merged.Jobs, seg.Jobs...)
	}
	merged.Sort()
	cut := ts.splitFrac() * ts.totalDays() * 24 * 3600
	train, test := merged.SplitAt(cut)
	if len(train.Jobs) == 0 || len(test.Jobs) == 0 {
		return nil, fmt.Errorf("degenerate split at %.2fd: %d train / %d test jobs",
			cut/86400, len(train.Jobs), len(test.Jobs))
	}
	cm := cost.Default()
	model, err := core.TrainCategoryModel(train.Jobs, cm, spec.trainOptions())
	if err != nil {
		return nil, fmt.Errorf("training model: %w", err)
	}
	return &env{
		train: train,
		test:  test,
		model: model,
		cm:    cm,
		quota: test.PeakSSDUsage() * spec.Run.quotaFrac(),
	}, nil
}

// writeHeader renders the deterministic report preamble shared by the
// trace-driven pipelines.
func (e *env) writeHeader(b *bytes.Buffer, spec *Spec) {
	writeTitle(b, spec)
	ts := spec.Trace
	fmt.Fprintf(b, "trace: %d segment(s), %.2f days, split at %.2fd\n",
		len(ts.Segments), ts.totalDays(), ts.splitFrac()*ts.totalDays())
	fmt.Fprintf(b, "jobs: %d train / %d test\n", len(e.train.Jobs), len(e.test.Jobs))
	fmt.Fprintf(b, "quota: %.1f%% of test peak = %.3f GiB\n",
		spec.Run.quotaFrac()*100, e.quota/(1<<30))
	fmt.Fprintf(b, "model: %d categories, %d rounds, seed %d\n",
		spec.Train.categories(), spec.Train.rounds(), spec.trainSeed())
}

func writeTitle(b *bytes.Buffer, spec *Spec) {
	fmt.Fprintf(b, "scenario: %s (%s)\n", spec.Name, spec.Pipeline)
	if spec.Description != "" {
		fmt.Fprintf(b, "%s\n", spec.Description)
	}
}

// runSim replays the test half through the Algorithm 1 ranking policy
// and the model-free FirstFit floor.
func runSim(spec *Spec) (*RunResult, error) {
	e, err := buildEnv(spec)
	if err != nil {
		return nil, err
	}
	p, err := policy.NewAdaptiveRanking(e.model, e.cm, core.DefaultAdaptiveConfig(e.model.NumCategories()))
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(e.test, p, e.cm, sim.Config{SSDQuota: e.quota, KeepRecords: true})
	if err != nil {
		return nil, err
	}
	ff, err := sim.Run(e.test, policy.FirstFit{}, e.cm, sim.Config{SSDQuota: e.quota})
	if err != nil {
		return nil, err
	}
	wanted := 0
	for i := range res.Records {
		if res.Records[i].Outcome.WantedSSD {
			wanted++
		}
	}
	var b bytes.Buffer
	e.writeHeader(&b, spec)
	fmt.Fprintf(&b, "\nranking:  TCO %.3f%%  TCIO %.3f%%\n", res.TCOSavingsPercent(), res.TCIOSavingsPercent())
	fmt.Fprintf(&b, "firstfit: TCO %.3f%%  TCIO %.3f%%\n", ff.TCOSavingsPercent(), ff.TCIOSavingsPercent())
	fmt.Fprintf(&b, "ssd requested: %d of %d jobs (%.1f%%)\n",
		wanted, len(e.test.Jobs), 100*float64(wanted)/float64(len(e.test.Jobs)))
	fmt.Fprintf(&b, "ssd peak used: %.1f%% of quota\n", 100*res.SSDPeakUsed/e.quota)
	return &RunResult{
		Report: b.Bytes(),
		Stats: Stats{
			Jobs:    len(e.test.Jobs),
			TCOPct:  res.TCOSavingsPercent(),
			TCIOPct: res.TCIOSavingsPercent(),
		},
	}, nil
}

// runRebalance replays the test half twice through the Algorithm 1
// write-time ranking policy: once bare, once wrapped in the
// heat-aware global rebalancer (knapsack residency plan, demotions
// and early evictions). The report shows both runs and the
// rebalancer's solver counters; Stats carries the rebalanced run.
func runRebalance(spec *Spec) (*RunResult, error) {
	e, err := buildEnv(spec)
	if err != nil {
		return nil, err
	}
	newRanking := func() (sim.Policy, error) {
		return policy.NewAdaptiveRanking(e.model, e.cm, core.DefaultAdaptiveConfig(e.model.NumCategories()))
	}
	plainPolicy, err := newRanking()
	if err != nil {
		return nil, err
	}
	plain, err := sim.Run(e.test, plainPolicy, e.cm, sim.Config{SSDQuota: e.quota})
	if err != nil {
		return nil, err
	}
	inner, err := newRanking()
	if err != nil {
		return nil, err
	}
	reb := rebalance.New(inner, e.cm, rebalance.Config{
		HalfLifeSec:      spec.Run.heatHalfLifeSec(),
		SolveIntervalSec: spec.Run.rebalanceSec(),
	})
	res, err := sim.Run(e.test, reb, e.cm, sim.Config{SSDQuota: e.quota})
	if err != nil {
		return nil, err
	}
	st := reb.Stats()
	var b bytes.Buffer
	e.writeHeader(&b, spec)
	fmt.Fprintf(&b, "rebalance: solve every %.2fh, heat half-life %.2fh\n",
		spec.Run.rebalanceSec()/3600, spec.Run.heatHalfLifeSec()/3600)
	fmt.Fprintf(&b, "\nwrite-time only:      TCO %.3f%%  TCIO %.3f%%\n",
		plain.TCOSavingsPercent(), plain.TCIOSavingsPercent())
	fmt.Fprintf(&b, "write-time+rebalance: TCO %.3f%%  TCIO %.3f%%\n",
		res.TCOSavingsPercent(), res.TCIOSavingsPercent())
	fmt.Fprintf(&b, "rebalance win: %+.3f TCO points\n",
		res.TCOSavingsPercent()-plain.TCOSavingsPercent())
	fmt.Fprintf(&b, "solver: %d solves (%d LP-optimal, %d greedy fallbacks), %d workloads planned of %d seen\n",
		st.Solves, st.LPOptimal, st.LPFallbacks, st.Planned, st.Workloads)
	fmt.Fprintf(&b, "actions: %d demotions, %d early evictions over %d observations\n",
		st.Demotions, st.Evictions, st.Observations)
	return &RunResult{
		Report: b.Bytes(),
		Stats: Stats{
			Jobs:    len(e.test.Jobs),
			TCOPct:  res.TCOSavingsPercent(),
			TCIOPct: res.TCIOSavingsPercent(),
		},
	}, nil
}

// serveLoop adapts the sharded batching server into a sim.Policy,
// timing each decision. It mirrors the online package's loop policy
// (fail fast after the first server error) and additionally records
// per-Submit wall latency for the p99 stat.
type serveLoop struct {
	srv   *serve.Server
	latMs []float64
	err   error
}

func (p *serveLoop) Name() string { return "ScenarioServe" }

func (p *serveLoop) Place(j *trace.Job, _ sim.PlaceContext) bool {
	if p.err != nil {
		return false
	}
	start := time.Now()
	d, err := p.srv.Submit(j)
	p.latMs = append(p.latMs, float64(time.Since(start).Microseconds())/1000)
	if err != nil {
		p.err = err
		return false
	}
	return d.Admit
}

func (p *serveLoop) Observe(j *trace.Job, o sim.Outcome) {
	if p.err != nil {
		return
	}
	if err := p.srv.Observe(j, o); err != nil {
		p.err = err
	}
}

// newServer stands up a registry + sharded server pair serving the
// env's model. BatchSize is pinned to 1: the simulator submits
// sequentially in virtual time, so decisions stay deterministic and
// batch accumulation would only add flush latency per job.
func newServer(spec *Spec, e *env) (*registry.Registry, *serve.Server, error) {
	reg := registry.New()
	if _, err := reg.Publish(spec.Name, e.model, 0); err != nil {
		return nil, nil, err
	}
	scfg := serve.DefaultConfig(e.model.NumCategories())
	scfg.Shards = spec.Run.shards()
	scfg.BatchSize = 1
	srv, err := serve.New(reg, spec.Name, e.cm, scfg)
	if err != nil {
		return nil, nil, err
	}
	return reg, srv, nil
}

// runServe replays the test half through the frozen model behind the
// sharded batching server — the serving seam without learning.
func runServe(spec *Spec) (*RunResult, error) {
	e, err := buildEnv(spec)
	if err != nil {
		return nil, err
	}
	_, srv, err := newServer(spec, e)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	lp := &serveLoop{srv: srv}
	res, err := sim.Run(e.test, lp, e.cm, sim.Config{SSDQuota: e.quota, KeepRecords: true})
	if err != nil {
		return nil, err
	}
	if lp.err != nil {
		return nil, fmt.Errorf("serve replay: %w", lp.err)
	}
	st := srv.Stats()
	var b bytes.Buffer
	e.writeHeader(&b, spec)
	fmt.Fprintf(&b, "\ndecisions: %d submitted, %d admitted (%.1f%%) across %d shards\n",
		st.Submitted, st.Admitted, 100*float64(st.Admitted)/float64(st.Submitted), spec.Run.shards())
	fmt.Fprintf(&b, "model: v%d, swaps %d\n", srv.ModelVersion(), srv.Swaps())
	fmt.Fprintf(&b, "serve: TCO %.3f%%  TCIO %.3f%%\n", res.TCOSavingsPercent(), res.TCIOSavingsPercent())
	return &RunResult{
		Report: b.Bytes(),
		Stats: Stats{
			Jobs:    len(e.test.Jobs),
			TCOPct:  res.TCOSavingsPercent(),
			TCIOPct: res.TCIOSavingsPercent(),
			Swaps:   srv.Swaps(),
			P99Ms:   metrics.Quantile(lp.latMs, 0.99),
		},
	}, nil
}

// runOnline replays the test half through the full closed loop:
// server decisions, outcome feedback, synchronous gated retrains and
// hot swaps. Every retrain attempt becomes one deterministic report
// line (virtual time, trigger, sizes, shadow scores, verdict).
func runOnline(spec *Spec) (*RunResult, error) {
	e, err := buildEnv(spec)
	if err != nil {
		return nil, err
	}
	reg, srv, err := newServer(spec, e)
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	var events []online.Event
	lcfg := online.DefaultConfig(spec.Train.categories())
	lcfg.Train = spec.trainOptions()
	lcfg.Window.MaxCount = spec.Run.windowMax()
	lcfg.RetrainEverySec = spec.Run.retrainSec()
	lcfg.Drift.TVThreshold = spec.Run.DriftTV
	lcfg.Drift.MinSamples = spec.Run.minRetrainJobs()
	lcfg.MinRetrainJobs = spec.Run.minRetrainJobs()
	lcfg.GateEpsilonPct = spec.Run.gateEpsPct()
	lcfg.OnEvent = func(ev online.Event) { events = append(events, ev) }
	learner, err := online.New(reg, spec.Name, e.cm, lcfg)
	if err != nil {
		return nil, err
	}
	defer learner.Close()

	res, err := online.RunLoop(e.test, srv, learner, e.cm, sim.Config{SSDQuota: e.quota, KeepRecords: true})
	if err != nil {
		return nil, err
	}

	var b bytes.Buffer
	e.writeHeader(&b, spec)
	fmt.Fprintf(&b, "\n")
	var accepts int64
	for _, ev := range events {
		verdict := "ACCEPT"
		switch {
		case ev.Err != nil:
			verdict = "ERROR " + ev.Err.Error()
		case !ev.Accepted:
			verdict = "REJECT"
		default:
			accepts++
			verdict = fmt.Sprintf("ACCEPT v%d", ev.Version)
		}
		fmt.Fprintf(&b, "retrain t=%.2fd %-7s window=%d train=%d holdout=%d cand=%.3f%% live=%.3f%% -> %s\n",
			ev.Sec/86400, ev.Trigger, ev.WindowJobs, ev.TrainJobs, ev.HoldoutJobs,
			ev.CandidatePct, ev.LivePct, verdict)
	}
	fmt.Fprintf(&b, "loop: %d retrains, %d accepted, %d swaps, final model v%d\n",
		len(events), accepts, srv.Swaps(), srv.ModelVersion())
	fmt.Fprintf(&b, "window: %d records held\n", learner.WindowLen())
	fmt.Fprintf(&b, "online: TCO %.3f%%  TCIO %.3f%%\n", res.TCOSavingsPercent(), res.TCIOSavingsPercent())
	return &RunResult{
		Report: b.Bytes(),
		Stats: Stats{
			Jobs:     len(e.test.Jobs),
			TCOPct:   res.TCOSavingsPercent(),
			TCIOPct:  res.TCIOSavingsPercent(),
			Retrains: int64(len(events)),
			Swaps:    srv.Swaps(),
		},
	}, nil
}

// runFleet drives the multi-cluster fleet comparison from the spec.
func runFleet(spec *Spec) (*RunResult, error) {
	f := spec.Fleet
	fcfg := fleet.DefaultConfig(f.Clusters, f.Seed)
	fcfg.Fleet.DurationSec = f.Days * 24 * 3600
	fcfg.Fleet.Users = f.users()
	fcfg.Train = spec.trainOptions()
	fcfg.DonorCluster = f.Donor
	if f.Online {
		ocfg := online.DefaultConfig(spec.Train.categories())
		ocfg.Train = spec.trainOptions()
		ocfg.Window.MaxCount = spec.Run.windowMax()
		ocfg.Window.HorizonSec = f.Days * 24 * 3600
		ocfg.RetrainEverySec = spec.Run.retrainSec()
		ocfg.Drift.TVThreshold = spec.Run.DriftTV
		ocfg.Drift.MinSamples = spec.Run.minRetrainJobs()
		ocfg.MinRetrainJobs = spec.Run.minRetrainJobs()
		ocfg.GateEpsilonPct = spec.Run.gateEpsPct()
		fcfg.Online = &ocfg
	}
	rep, err := fleet.Run(fcfg)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	writeTitle(&b, spec)
	fmt.Fprintf(&b, "fleet: %d clusters, %.2f days, %d users, donor C%d, online=%v\n",
		f.Clusters, f.Days, f.users(), f.Donor, f.Online)
	fmt.Fprintf(&b, "model: %d categories, %d rounds, seed %d\n\n",
		spec.Train.categories(), spec.Train.rounds(), spec.trainSeed())
	rep.Render(&b)
	var tcio, tcioSaved float64
	for i := range rep.Clusters {
		tcio += rep.Clusters[i].TotalTCIO
		tcioSaved += rep.Clusters[i].PerCluster.TCIOSaved
	}
	var tcioPct float64
	if tcio > 0 {
		tcioPct = 100 * tcioSaved / tcio
	}
	return &RunResult{
		Report: b.Bytes(),
		Stats: Stats{
			Jobs:     rep.TotalTestJobs,
			TCOPct:   rep.PerClusterAggTCOPct,
			TCIOPct:  tcioPct,
			Retrains: rep.Counters.OnlineRetrains,
			Swaps:    rep.Counters.OnlineSwaps,
		},
	}, nil
}
