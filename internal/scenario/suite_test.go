package scenario

import (
	"bytes"
	"regexp"
	"testing"
)

// repoScenarios is the checked-in corpus at the repository root.
const repoScenarios = "../../scenarios"

// shortSubset keeps -short runs (the CI race job runs every package
// with -short) to two cheap scenarios covering both a sim and a serve
// seam; full runs take the whole corpus.
var shortSubset = regexp.MustCompile(`^(diurnal-burst|log-ingest)$`)

// TestAllSpecsParse asserts the checked-in corpus is wholly loadable:
// every scenarios/*/scenario.json parses and validates, the suite is
// at least six scenarios strong, and all five pipeline seams appear.
// CI runs this as its spec-parse gate.
func TestAllSpecsParse(t *testing.T) {
	pkgs, err := Discover(repoScenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 6 {
		t.Fatalf("corpus has %d scenarios, want >= 6", len(pkgs))
	}
	seams := map[string]bool{}
	for _, p := range pkgs {
		seams[p.Spec.Pipeline] = true
	}
	for _, want := range []string{PipelineSim, PipelineServe, PipelineOnline, PipelineFleet, PipelineRebalance} {
		if !seams[want] {
			t.Errorf("no scenario drives the %s pipeline", want)
		}
	}
}

// TestScenarioSuite runs the full checked-in corpus against its golden
// reports and thresholds, exactly as cmd/scenario does in CI.
func TestScenarioSuite(t *testing.T) {
	cfg := RunnerConfig{Dir: repoScenarios, Workers: 2}
	if testing.Short() {
		cfg.Filter = shortSubset
	}
	out, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		if !o.Passed() {
			t.Errorf("%s %s: %v", o.Status(), o.Pkg.Name, o.Failures())
		}
	}
}

// TestScenarioRunnerDeterminism is the suite's core contract: rendered
// reports and the deterministic half of Stats are identical at any
// worker count — both as structures and as bytes.
func TestScenarioRunnerDeterminism(t *testing.T) {
	cfg := RunnerConfig{Dir: repoScenarios}
	workers := []int{1, 2, 8}
	if testing.Short() {
		cfg.Filter = shortSubset
		workers = []int{1, 2}
	}

	runs := make([][]*Outcome, len(workers))
	for i, w := range workers {
		cfg.Workers = w
		out, err := RunAll(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for _, o := range out {
			if o.Err != nil {
				t.Fatalf("workers=%d %s: %v", w, o.Pkg.Name, o.Err)
			}
		}
		runs[i] = out
	}

	base := runs[0]
	for i := 1; i < len(runs); i++ {
		out := runs[i]
		if len(out) != len(base) {
			t.Fatalf("workers=%d ran %d scenarios, workers=%d ran %d",
				workers[i], len(out), workers[0], len(base))
		}
		for j, o := range out {
			b := base[j]
			if o.Pkg.Name != b.Pkg.Name {
				t.Fatalf("scenario order diverged: %s vs %s", o.Pkg.Name, b.Pkg.Name)
			}
			if !bytes.Equal(o.Result.Report, b.Result.Report) {
				t.Errorf("%s: report bytes differ between workers=%d and workers=%d",
					o.Pkg.Name, workers[0], workers[i])
			}
			if o.Result.Stats.Deterministic() != b.Result.Stats.Deterministic() {
				t.Errorf("%s: deterministic stats differ: %+v vs %+v", o.Pkg.Name,
					b.Result.Stats.Deterministic(), o.Result.Stats.Deterministic())
			}
		}
	}
}
