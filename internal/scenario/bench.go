package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// BenchHistory is the append-only suite measurement archive
// (BENCH_scenarios.json at the repo root): one BenchRun per suite
// invocation that asked for history, so perf PRs can diff a
// scenario's throughput and savings against every prior recording.
type BenchHistory struct {
	Benchmark string     `json:"benchmark"`
	Runs      []BenchRun `json:"runs"`
}

// BenchRun is one suite invocation's record.
type BenchRun struct {
	// Date is the invocation time, RFC 3339.
	Date string `json:"date"`
	// Go identifies the toolchain and platform.
	Go string `json:"go"`
	// Scenarios carries each executed scenario's verdict and stats in
	// suite order.
	Scenarios []BenchScenario `json:"scenarios"`
}

// BenchScenario is one scenario's history entry.
type BenchScenario struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	Stats  Stats  `json:"stats"`
}

// AppendHistory appends one run built from outcomes to the history at
// path, creating the file on first use. Scenarios that failed before
// producing a result are recorded with zero stats — a disappearing
// scenario should be visible in the history, not absent from it.
func AppendHistory(path string, when time.Time, outcomes []*Outcome) error {
	hist := BenchHistory{
		Benchmark: "scenario suite: declarative workloads with golden reports and threshold gates",
	}
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &hist); err != nil {
			return fmt.Errorf("scenario: parsing bench history %s: %w", path, err)
		}
	case os.IsNotExist(err):
		// First run creates the file.
	default:
		return fmt.Errorf("scenario: reading bench history: %w", err)
	}
	run := BenchRun{
		Date: when.UTC().Format(time.RFC3339),
		Go:   fmt.Sprintf("%s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH),
	}
	for _, o := range outcomes {
		bs := BenchScenario{Name: o.Pkg.Name, Status: o.Status()}
		if o.Result != nil {
			bs.Stats = o.Result.Stats
		}
		run.Scenarios = append(run.Scenarios, bs)
	}
	hist.Runs = append(hist.Runs, run)
	out, err := json.MarshalIndent(&hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
