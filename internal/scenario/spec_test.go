package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// validSpecJSON is a minimal spec exercising every optional block.
const validSpecJSON = `{
  "name": "valid-spec",
  "description": "a valid spec",
  "pipeline": "sim",
  "trace": {
    "splitFrac": 0.4,
    "segments": [
      {"cluster": "a", "seed": 1, "users": 2, "days": 0.5,
       "weights": {"query": 1, "logproc": 0.5}, "loadScale": 2}
    ]
  },
  "train": {"rounds": 3, "categories": 4, "seed": 9},
  "run": {"quotaFrac": 0.1, "shards": 2}
}`

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Name != "valid-spec" || s.Pipeline != PipelineSim {
		t.Fatalf("unexpected spec: %+v", s)
	}
	if got := s.Trace.splitFrac(); got != 0.4 {
		t.Fatalf("splitFrac = %g, want 0.4", got)
	}
	if got := s.Train.rounds(); got != 3 {
		t.Fatalf("rounds = %d, want 3", got)
	}
}

func TestParseSpecRejects(t *testing.T) {
	base := func() map[string]any {
		var m map[string]any
		if err := json.Unmarshal([]byte(validSpecJSON), &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name    string
		mutate  func(m map[string]any)
		wantErr string
	}{
		{"bad name", func(m map[string]any) { m["name"] = "Bad Name!" }, "invalid name"},
		{"long name", func(m map[string]any) { m["name"] = strings.Repeat("x", 65) }, "invalid name"},
		{"unknown pipeline", func(m map[string]any) { m["pipeline"] = "warp" }, "unknown pipeline"},
		{"missing trace", func(m map[string]any) { delete(m, "trace") }, "requires a trace block"},
		{"fleet with trace", func(m map[string]any) {
			m["pipeline"] = "fleet"
			m["fleet"] = map[string]any{"clusters": 2, "seed": 1, "days": 1}
		}, "drop the trace block"},
		{"fleet without block", func(m map[string]any) {
			m["pipeline"] = "fleet"
			delete(m, "trace")
		}, "requires a fleet block"},
		{"fleet block on sim", func(m map[string]any) {
			m["fleet"] = map[string]any{"clusters": 2, "seed": 1, "days": 1}
		}, "only valid with pipeline"},
		{"no segments", func(m map[string]any) {
			m["trace"].(map[string]any)["segments"] = []any{}
		}, "at least one segment"},
		{"splitFrac too high", func(m map[string]any) {
			m["trace"].(map[string]any)["splitFrac"] = 1.0
		}, "splitFrac"},
		{"zero users", func(m map[string]any) {
			seg(m)["users"] = 0
		}, "users"},
		{"huge days", func(m map[string]any) {
			seg(m)["days"] = 400
		}, "days"},
		{"inverted steps", func(m map[string]any) {
			seg(m)["minSteps"] = 9
			seg(m)["maxSteps"] = 3
		}, "minSteps 9 > maxSteps 3"},
		{"unknown archetype", func(m map[string]any) {
			seg(m)["weights"] = map[string]any{"cryptomining": 1}
		}, "unknown archetype"},
		{"zero-sum weights", func(m map[string]any) {
			seg(m)["weights"] = map[string]any{"query": 0}
		}, "weights sum"},
		{"negative weight", func(m map[string]any) {
			seg(m)["weights"] = map[string]any{"query": -1}
		}, "out of range"},
		{"bad cluster", func(m map[string]any) {
			seg(m)["cluster"] = "No Spaces"
		}, "invalid cluster name"},
		{"categories 1", func(m map[string]any) {
			m["train"].(map[string]any)["categories"] = 1
		}, "train categories"},
		{"rounds overflow", func(m map[string]any) {
			m["train"].(map[string]any)["rounds"] = 1000
		}, "train rounds"},
		{"quota over 1", func(m map[string]any) {
			m["run"].(map[string]any)["quotaFrac"] = 1.5
		}, "quotaFrac"},
		{"windowMax 1", func(m map[string]any) {
			m["run"].(map[string]any)["windowMax"] = 1
		}, "windowMax"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base()
			tc.mutate(m)
			data, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			_, err = ParseSpec(data)
			if err == nil {
				t.Fatalf("ParseSpec accepted %s", data)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func seg(m map[string]any) map[string]any {
	return m["trace"].(map[string]any)["segments"].([]any)[0].(map[string]any)
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name": "x", "pipeline": "sim", "bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(validSpecJSON + "{}")); err == nil {
		t.Fatal("trailing data accepted")
	}
	if _, err := ParseSpec([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestParseSpecRoundTrip pins the property FuzzScenarioSpec explores:
// defaults apply at run time, not parse time, so a valid spec survives
// marshal → parse unchanged.
func TestParseSpecRoundTrip(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip changed spec:\n%+v\n%+v", s, s2)
	}
}

func TestEffectiveDefaults(t *testing.T) {
	var tr TrainSpec
	var r RunSpec
	var ts TraceSpec
	if tr.rounds() != 8 || tr.categories() != 8 {
		t.Fatalf("train defaults: rounds %d categories %d", tr.rounds(), tr.categories())
	}
	if r.quotaFrac() != 0.05 || r.shards() != 4 || r.gateEpsPct() != 0.5 {
		t.Fatalf("run defaults: %g %d %g", r.quotaFrac(), r.shards(), r.gateEpsPct())
	}
	if got := r.retrainSec(); got != 12*3600 {
		t.Fatalf("retrainSec default = %g, want 12h", got)
	}
	r.DriftTV = 0.3
	if got := r.retrainSec(); got != 0 {
		t.Fatalf("retrainSec with drift-only trigger = %g, want 0", got)
	}
	if ts.splitFrac() != 0.5 {
		t.Fatalf("splitFrac default = %g", ts.splitFrac())
	}
	ts.Segments = []SegmentSpec{
		{Days: 1},
		{Days: 2, OffsetDays: 1.5},
	}
	if got := ts.totalDays(); got != 3.5 {
		t.Fatalf("totalDays = %g, want 3.5", got)
	}
}

func TestThresholdsCheck(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	var nilTh *Thresholds
	if v := nilTh.Check(Stats{}); v != nil {
		t.Fatalf("nil thresholds produced violations %v", v)
	}
	th := &Thresholds{MinTCOPct: f(5), MinJobsPerSec: f(100), MaxP99Ms: f(10)}
	s := Stats{TCOPct: 6, JobsPerSec: 200, P99Ms: 1}
	if v := th.Check(s); len(v) != 0 {
		t.Fatalf("clean stats produced violations %v", v)
	}
	s = Stats{TCOPct: 4, JobsPerSec: 50, P99Ms: 20}
	v := th.Check(s)
	if len(v) != 3 {
		t.Fatalf("want 3 violations, got %v", v)
	}
	for _, want := range []string{"TCO savings", "throughput", "p99"} {
		found := false
		for _, line := range v {
			if strings.Contains(line, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("violations %v missing %q", v, want)
		}
	}
	if _, err := ParseThresholds([]byte(`{"min_tco_pct": 1, "bogus": 2}`)); err == nil {
		t.Fatal("unknown threshold field accepted")
	}
}
