package scenario

import (
	"fmt"
	"regexp"
	"runtime"
	"sync"

	"repro/internal/golden"
)

// RunnerConfig controls a suite run.
type RunnerConfig struct {
	// Dir is the scenarios root (each subdirectory is one package).
	Dir string
	// Filter restricts the run to matching scenario names (nil = all).
	Filter *regexp.Regexp
	// Workers bounds the scenario worker pool (0 = GOMAXPROCS).
	// Reports are bit-identical at any value: scenarios share no
	// mutable state, so parallelism trades wall clock only.
	Workers int
	// Update rewrites each scenario's report.golden with the run's
	// report instead of diffing against it. Thresholds still apply.
	Update bool
}

// Outcome is one scenario's suite verdict.
type Outcome struct {
	Pkg *Package
	// Result is nil when Err is set.
	Result *RunResult
	// Err is a pipeline execution error.
	Err error
	// GoldenErr is the golden diff (or missing-golden) failure.
	GoldenErr error
	// Violations are failed threshold bounds.
	Violations []string
	// Updated reports that the golden file was rewritten.
	Updated bool
}

// Passed reports whether the scenario cleared execution, golden and
// thresholds.
func (o *Outcome) Passed() bool {
	return o.Err == nil && o.GoldenErr == nil && len(o.Violations) == 0
}

// Status renders the verdict for summaries and the bench history:
// PASS, FAIL (golden or threshold) or ERROR (pipeline failure).
func (o *Outcome) Status() string {
	switch {
	case o.Err != nil:
		return "ERROR"
	case !o.Passed():
		return "FAIL"
	default:
		return "PASS"
	}
}

// Failures flattens the outcome's problems into printable lines.
func (o *Outcome) Failures() []string {
	var out []string
	if o.Err != nil {
		out = append(out, o.Err.Error())
	}
	if o.GoldenErr != nil {
		out = append(out, o.GoldenErr.Error())
	}
	out = append(out, o.Violations...)
	return out
}

// RunAll discovers, filters and executes the suite on a bounded
// worker pool, returning outcomes in discovery (name) order
// regardless of completion order. Per-scenario failures land in the
// outcome, not the error: one broken scenario must not hide the
// others' results. The error covers discovery problems and an empty
// filter match.
func RunAll(cfg RunnerConfig) ([]*Outcome, error) {
	pkgs, err := Discover(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if cfg.Filter != nil {
		var keep []*Package
		for _, p := range pkgs {
			if cfg.Filter.MatchString(p.Name) {
				keep = append(keep, p)
			}
		}
		if len(keep) == 0 {
			return nil, fmt.Errorf("scenario: no scenarios match %q", cfg.Filter)
		}
		pkgs = keep
	}
	outcomes := make([]*Outcome, len(pkgs))
	runPool(len(pkgs), cfg.Workers, func(i int) {
		outcomes[i] = runOne(pkgs[i], cfg.Update)
	})
	return outcomes, nil
}

// runOne executes a single package and applies its golden and
// threshold gates.
func runOne(pkg *Package, update bool) *Outcome {
	o := &Outcome{Pkg: pkg}
	res, err := Execute(pkg.Spec)
	if err != nil {
		o.Err = err
		return o
	}
	o.Result = res
	if update {
		if err := golden.Write(pkg.GoldenPath(), res.Report); err != nil {
			o.Err = fmt.Errorf("scenario %s: %w", pkg.Name, err)
			return o
		}
		o.Updated = true
	} else if err := golden.Compare(pkg.GoldenPath(), res.Report); err != nil {
		o.GoldenErr = err
	}
	o.Violations = pkg.Thresholds.Check(res.Stats)
	return o
}

// runPool fans fn(0..n-1) over a bounded worker pool. Each callee
// writes only to its own index, so any worker count yields identical
// outputs.
func runPool(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
