// Package scenario is the declarative workload suite: scenario
// packages are directories under scenarios/<name>/, each holding a
// spec (scenario.json) that says which trace to generate and which
// pipeline to drive (sim, serve, online or fleet), an expected golden
// report (report.golden) and optional regression thresholds
// (thresholds.json). A runner discovers, executes and diffs all of
// them on a bounded worker pool; cmd/scenario is the CLI front end.
//
// The layout follows elastic-package's per-package benchmark shape:
// sample inputs plus config discovered by a runner, so scenario
// diversity grows as a regression-tracked corpus instead of ad-hoc
// fixtures. Every future perf PR has a fixed arena to prove itself in.
//
// Determinism contract: a scenario's rendered report is bit-identical
// for the same spec at any runner worker count. Trace generation is
// seeded, training is bit-identical at any worker count, simulation
// replays virtual time, serving replays sequentially at BatchSize 1,
// and online loops retrain synchronously. Wall-clock-derived values
// (jobs/s, p99, wall ms) never appear in reports — they go to Stats,
// where thresholds and the bench history consume them.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"

	"repro/internal/trace"
)

// Pipeline names a scenario's execution seam.
const (
	PipelineSim       = "sim"       // policy simulation: ranking vs firstfit on the test half
	PipelineServe     = "serve"     // frozen model behind the sharded batching server
	PipelineOnline    = "online"    // closed continuous-learning loop with gated hot swaps
	PipelineFleet     = "fleet"     // multi-cluster fleet comparison
	PipelineRebalance = "rebalance" // write-time ranking alone vs wrapped in the heat-aware rebalancer
)

// Spec is the declarative scenario description parsed from
// scenario.json. Zero-valued optional knobs take documented defaults
// at execution time (not at parse time), so a parsed spec marshals
// back to its JSON form unchanged — the round-trip property
// FuzzScenarioSpec enforces.
type Spec struct {
	// Name must match the scenario's directory name.
	Name string `json:"name"`
	// Description is a one-line human summary echoed in the report.
	Description string `json:"description,omitempty"`
	// Pipeline selects the seam to drive: sim, serve, online, fleet.
	Pipeline string `json:"pipeline"`
	// Trace configures trace generation (required unless fleet, which
	// generates per-cluster traces from Fleet instead).
	Trace *TraceSpec `json:"trace,omitempty"`
	// Fleet configures the fleet pipeline (required iff fleet).
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Train configures every model trained during the run.
	Train TrainSpec `json:"train,omitempty"`
	// Run holds pipeline knobs (quota, shards, online loop settings).
	Run RunSpec `json:"run,omitempty"`
}

// TraceSpec describes the generated workload as one or more segments
// merged on a shared virtual timeline. Multiple segments compose the
// interesting workloads: a drifting mix is two segments with disjoint
// archetype weights at different offsets, a flash crowd is a short
// hot segment overlapping a steady one, a noisy neighbor is an
// aggressive tenant sharing the window with a well-behaved one.
type TraceSpec struct {
	Segments []SegmentSpec `json:"segments"`
	// SplitFrac is where the train/test cut lands as a fraction of the
	// spec's total span (0 = 0.5). The model trains on jobs before the
	// cut; every pipeline evaluates on the jobs at/after it.
	SplitFrac float64 `json:"splitFrac,omitempty"`
}

// SegmentSpec is one generated trace segment: a cluster-shaped
// workload shifted onto the scenario timeline at OffsetDays.
type SegmentSpec struct {
	// Cluster names the segment (0 = "S<index>"). Distinct names keep
	// job IDs unique when segments overlap in time.
	Cluster string `json:"cluster,omitempty"`
	// Seed drives the segment's generator.
	Seed int64 `json:"seed"`
	// Users is the segment's user population.
	Users int `json:"users"`
	// Days is the segment's own span.
	Days float64 `json:"days"`
	// OffsetDays shifts the segment's arrivals on the shared timeline.
	OffsetDays float64 `json:"offsetDays,omitempty"`
	// MinPipes/MaxPipes bound pipelines per user (0 = generator
	// defaults 1/4); MinSteps/MaxSteps bound shuffle steps per
	// pipeline (0 = defaults 1/4). Deep step chains are how the
	// ML-training IO-graph archetype gets its stage-heavy shape.
	MinPipes int `json:"minPipes,omitempty"`
	MaxPipes int `json:"maxPipes,omitempty"`
	MinSteps int `json:"minSteps,omitempty"`
	MaxSteps int `json:"maxSteps,omitempty"`
	// Weights is the archetype mix (nil = uniform). Keys must name
	// built-in archetypes; missing names get weight 0.
	Weights map[string]float64 `json:"weights,omitempty"`
	// LoadScale multiplies arrival rates (0 = 1).
	LoadScale float64 `json:"loadScale,omitempty"`
	// NoiseScale multiplies per-job lognormal noise (0 = 1).
	NoiseScale float64 `json:"noiseScale,omitempty"`
}

// TrainSpec scales the models a scenario trains.
type TrainSpec struct {
	// Rounds is GBDT boosting rounds (0 = 8).
	Rounds int `json:"rounds,omitempty"`
	// Categories is the importance-category count (0 = 8).
	Categories int `json:"categories,omitempty"`
	// Seed seeds training (0 = the first segment's seed, or the fleet
	// seed).
	Seed int64 `json:"seed,omitempty"`
}

// RunSpec holds the pipeline knobs.
type RunSpec struct {
	// QuotaFrac is the SSD quota as a fraction of the test half's peak
	// simultaneous footprint (0 = 0.05).
	QuotaFrac float64 `json:"quotaFrac,omitempty"`
	// Shards is the serving layer's admission shard count for the
	// serve and online pipelines (0 = 4).
	Shards int `json:"shards,omitempty"`
	// RetrainHours is the online loop's cadence trigger in virtual
	// hours (0 with DriftTV 0 = 12).
	RetrainHours float64 `json:"retrainHours,omitempty"`
	// DriftTV is the online loop's total-variation drift trigger
	// threshold (0 disables).
	DriftTV float64 `json:"driftTV,omitempty"`
	// GateEpsPct is the tolerated candidate-vs-live TCO regression in
	// points before the gate rejects (0 = 0.5).
	GateEpsPct float64 `json:"gateEpsPct,omitempty"`
	// WindowMax caps the online feedback window (0 = 4096).
	WindowMax int `json:"windowMax,omitempty"`
	// MinRetrainJobs is the minimum window population for a retrain
	// (0 = 150).
	MinRetrainJobs int `json:"minRetrainJobs,omitempty"`
	// RebalanceHours is the rebalance pipeline's solve cadence in
	// virtual hours (0 = 1).
	RebalanceHours float64 `json:"rebalanceHours,omitempty"`
	// HeatHalfLifeHours is the rebalancer's heat decay half-life in
	// virtual hours (0 = 6).
	HeatHalfLifeHours float64 `json:"heatHalfLifeHours,omitempty"`
}

// FleetSpec configures the fleet pipeline.
type FleetSpec struct {
	// Clusters is the fleet size.
	Clusters int `json:"clusters"`
	// Seed is the fleet's base seed.
	Seed int64 `json:"seed"`
	// Days is the per-cluster trace span (half trains, half evaluates).
	Days float64 `json:"days"`
	// Users is the base per-cluster population (0 = 6).
	Users int `json:"users,omitempty"`
	// Donor is the transfer regime's donor cluster index.
	Donor int `json:"donor,omitempty"`
	// Online drives the closed learning loop per cluster.
	Online bool `json:"online,omitempty"`
}

// nameRe bounds scenario names to safe directory names.
var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// ParseSpec decodes and validates a scenario.json body. Unknown
// fields, trailing data and out-of-range values are all errors — a
// malformed spec must never reach a pipeline.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec is executable. Bounds are generous but
// finite: a spec that passes cannot make a pipeline panic or run
// effectively forever.
func (s *Spec) Validate() error {
	if !nameRe.MatchString(s.Name) || len(s.Name) > 64 {
		return fmt.Errorf("scenario: invalid name %q (want lowercase [a-z0-9-], <= 64 chars)", s.Name)
	}
	switch s.Pipeline {
	case PipelineSim, PipelineServe, PipelineOnline, PipelineRebalance:
		if s.Fleet != nil {
			return fmt.Errorf("scenario %s: fleet block is only valid with pipeline %q", s.Name, PipelineFleet)
		}
		if s.Trace == nil {
			return fmt.Errorf("scenario %s: pipeline %q requires a trace block", s.Name, s.Pipeline)
		}
		if err := s.Trace.validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	case PipelineFleet:
		if s.Trace != nil {
			return fmt.Errorf("scenario %s: fleet pipeline generates its own traces; drop the trace block", s.Name)
		}
		if s.Fleet == nil {
			return fmt.Errorf("scenario %s: fleet pipeline requires a fleet block", s.Name)
		}
		if err := s.Fleet.validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	default:
		return fmt.Errorf("scenario %s: unknown pipeline %q (want sim|serve|online|fleet|rebalance)", s.Name, s.Pipeline)
	}
	if err := s.Train.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Run.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return nil
}

func (t *TraceSpec) validate() error {
	if len(t.Segments) == 0 {
		return fmt.Errorf("trace needs at least one segment")
	}
	if len(t.Segments) > 16 {
		return fmt.Errorf("trace has %d segments (max 16)", len(t.Segments))
	}
	if t.SplitFrac < 0 || t.SplitFrac >= 1 {
		return fmt.Errorf("splitFrac %g out of range [0, 1)", t.SplitFrac)
	}
	known := map[string]bool{}
	for _, a := range trace.Archetypes() {
		known[a.Name] = true
	}
	for i := range t.Segments {
		if err := t.Segments[i].validate(known); err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
	}
	return nil
}

func (g *SegmentSpec) validate(known map[string]bool) error {
	switch {
	case g.Users < 1 || g.Users > 256:
		return fmt.Errorf("users %d out of range [1, 256]", g.Users)
	case g.Days <= 0 || g.Days > 60:
		return fmt.Errorf("days %g out of range (0, 60]", g.Days)
	case g.OffsetDays < 0 || g.OffsetDays > 120:
		return fmt.Errorf("offsetDays %g out of range [0, 120]", g.OffsetDays)
	case g.MinPipes < 0 || g.MaxPipes < 0 || g.MaxPipes > 32 || g.MinPipes > 32:
		return fmt.Errorf("pipes bounds [%d, %d] out of range [0, 32]", g.MinPipes, g.MaxPipes)
	case g.MinSteps < 0 || g.MaxSteps < 0 || g.MaxSteps > 32 || g.MinSteps > 32:
		return fmt.Errorf("steps bounds [%d, %d] out of range [0, 32]", g.MinSteps, g.MaxSteps)
	case g.LoadScale < 0 || g.LoadScale > 100:
		return fmt.Errorf("loadScale %g out of range [0, 100]", g.LoadScale)
	case g.NoiseScale < 0 || g.NoiseScale > 100:
		return fmt.Errorf("noiseScale %g out of range [0, 100]", g.NoiseScale)
	}
	// Both-set bounds must be ordered; a zero max defers to defaults.
	if g.MaxPipes > 0 && g.MinPipes > g.MaxPipes {
		return fmt.Errorf("minPipes %d > maxPipes %d", g.MinPipes, g.MaxPipes)
	}
	if g.MaxSteps > 0 && g.MinSteps > g.MaxSteps {
		return fmt.Errorf("minSteps %d > maxSteps %d", g.MinSteps, g.MaxSteps)
	}
	if g.Cluster != "" && (!nameRe.MatchString(g.Cluster) || len(g.Cluster) > 32) {
		return fmt.Errorf("invalid cluster name %q", g.Cluster)
	}
	var total float64
	for name, w := range g.Weights {
		if !known[name] {
			return fmt.Errorf("unknown archetype %q in weights", name)
		}
		if w < 0 || w > 1e6 {
			return fmt.Errorf("weight %q = %g out of range [0, 1e6]", name, w)
		}
		total += w
	}
	if g.Weights != nil && total <= 0 {
		return fmt.Errorf("weights sum to %g (need a positive mix)", total)
	}
	return nil
}

func (t *TrainSpec) validate() error {
	if t.Rounds < 0 || t.Rounds > 500 {
		return fmt.Errorf("train rounds %d out of range [0, 500]", t.Rounds)
	}
	if t.Categories < 0 || t.Categories == 1 || t.Categories > 100 {
		return fmt.Errorf("train categories %d out of range {0} ∪ [2, 100]", t.Categories)
	}
	return nil
}

func (r *RunSpec) validate() error {
	switch {
	case r.QuotaFrac < 0 || r.QuotaFrac > 1:
		return fmt.Errorf("quotaFrac %g out of range [0, 1]", r.QuotaFrac)
	case r.Shards < 0 || r.Shards > 64:
		return fmt.Errorf("shards %d out of range [0, 64]", r.Shards)
	case r.RetrainHours < 0 || r.RetrainHours > 24*365:
		return fmt.Errorf("retrainHours %g out of range [0, 8760]", r.RetrainHours)
	case r.DriftTV < 0 || r.DriftTV > 1:
		return fmt.Errorf("driftTV %g out of range [0, 1]", r.DriftTV)
	case r.GateEpsPct < 0 || r.GateEpsPct > 100:
		return fmt.Errorf("gateEpsPct %g out of range [0, 100]", r.GateEpsPct)
	case r.WindowMax < 0 || r.WindowMax == 1 || r.WindowMax > 1<<20:
		return fmt.Errorf("windowMax %d out of range {0} ∪ [2, 1048576]", r.WindowMax)
	case r.MinRetrainJobs < 0 || r.MinRetrainJobs == 1 || r.MinRetrainJobs > 1<<20:
		return fmt.Errorf("minRetrainJobs %d out of range {0} ∪ [2, 1048576]", r.MinRetrainJobs)
	case r.RebalanceHours < 0 || r.RebalanceHours > 24*365:
		return fmt.Errorf("rebalanceHours %g out of range [0, 8760]", r.RebalanceHours)
	case r.HeatHalfLifeHours < 0 || r.HeatHalfLifeHours > 24*365:
		return fmt.Errorf("heatHalfLifeHours %g out of range [0, 8760]", r.HeatHalfLifeHours)
	}
	return nil
}

func (f *FleetSpec) validate() error {
	switch {
	case f.Clusters < 1 || f.Clusters > 32:
		return fmt.Errorf("fleet clusters %d out of range [1, 32]", f.Clusters)
	case f.Days <= 0 || f.Days > 60:
		return fmt.Errorf("fleet days %g out of range (0, 60]", f.Days)
	case f.Users < 0 || f.Users > 256:
		return fmt.Errorf("fleet users %d out of range [0, 256]", f.Users)
	case f.Donor < 0 || f.Donor >= f.Clusters:
		return fmt.Errorf("fleet donor %d out of range [0, %d)", f.Donor, f.Clusters)
	}
	return nil
}

// Effective-value helpers: zero means "use the documented default".

func (t TrainSpec) rounds() int     { return defInt(t.Rounds, 8) }
func (t TrainSpec) categories() int { return defInt(t.Categories, 8) }

func (r RunSpec) quotaFrac() float64 { return defFloat(r.QuotaFrac, 0.05) }
func (r RunSpec) shards() int        { return defInt(r.Shards, 4) }
func (r RunSpec) gateEpsPct() float64 {
	return defFloat(r.GateEpsPct, 0.5)
}
func (r RunSpec) windowMax() int      { return defInt(r.WindowMax, 4096) }
func (r RunSpec) minRetrainJobs() int { return defInt(r.MinRetrainJobs, 150) }

// rebalanceSec / heatHalfLifeSec are the rebalance pipeline's cadence
// and decay half-life in virtual seconds.
func (r RunSpec) rebalanceSec() float64    { return defFloat(r.RebalanceHours, 1) * 3600 }
func (r RunSpec) heatHalfLifeSec() float64 { return defFloat(r.HeatHalfLifeHours, 6) * 3600 }

// retrainSec returns the cadence trigger; when both triggers are left
// unset the loop defaults to a 12-virtual-hour cadence so an online
// scenario always retrains eventually.
func (r RunSpec) retrainSec() float64 {
	if r.RetrainHours == 0 && r.DriftTV == 0 {
		return 12 * 3600
	}
	return r.RetrainHours * 3600
}

func (t TraceSpec) splitFrac() float64 { return defFloat(t.SplitFrac, 0.5) }

// totalDays is the scenario timeline span: the latest segment end.
func (t TraceSpec) totalDays() float64 {
	var end float64
	for _, g := range t.Segments {
		if e := g.OffsetDays + g.Days; e > end {
			end = e
		}
	}
	return end
}

func (f FleetSpec) users() int { return defInt(f.Users, 6) }

func defInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func defFloat(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}
