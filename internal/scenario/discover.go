package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File names a scenario package may contain.
const (
	SpecFile       = "scenario.json"
	GoldenFile     = "report.golden"
	ThresholdsFile = "thresholds.json"
)

// Package is one discovered scenario directory.
type Package struct {
	// Name is the directory name (== Spec.Name).
	Name string
	// Dir is the scenario directory path.
	Dir string
	// Spec is the parsed, validated spec.
	Spec *Spec
	// Thresholds is nil when the package has no thresholds.json.
	Thresholds *Thresholds
}

// GoldenPath is where the package's expected report lives.
func (p *Package) GoldenPath() string { return filepath.Join(p.Dir, GoldenFile) }

// Discover walks root's immediate subdirectories and loads every
// scenario package, sorted by name. A subdirectory without a
// scenario.json, a spec that fails validation, a spec whose name
// disagrees with its directory, or a malformed thresholds.json are
// all hard errors: a broken corpus entry must fail the run loudly,
// not silently shrink the suite. Hidden directories are skipped.
func Discover(root string) ([]*Package, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("scenario: discovering %s: %w", root, err)
	}
	var pkgs []*Package
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		pkg, err := Load(filepath.Join(root, e.Name()))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("scenario: no scenario packages under %s", root)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Name < pkgs[j].Name })
	return pkgs, nil
}

// Load reads one scenario package directory.
func Load(dir string) (*Package, error) {
	name := filepath.Base(dir)
	data, err := os.ReadFile(filepath.Join(dir, SpecFile))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	if spec.Name != name {
		return nil, fmt.Errorf("scenario %s: spec name %q disagrees with directory name", name, spec.Name)
	}
	pkg := &Package{Name: name, Dir: dir, Spec: spec}
	tdata, err := os.ReadFile(filepath.Join(dir, ThresholdsFile))
	switch {
	case err == nil:
		th, err := ParseThresholds(tdata)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		pkg.Thresholds = th
	case os.IsNotExist(err):
		// Thresholds are optional.
	default:
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	return pkg, nil
}

// Thresholds gate a scenario on its measured stats. Nil fields are
// unchecked; pointer fields distinguish "no bound" from a zero bound.
// The TCO/TCIO bounds are deterministic regression gates; the
// throughput and latency bounds are wall-clock and should be set with
// generous slack for the slowest CI runner.
type Thresholds struct {
	// MinTCOPct is the minimum acceptable TCO savings percent.
	MinTCOPct *float64 `json:"min_tco_pct,omitempty"`
	// MinTCIOPct is the minimum acceptable TCIO savings percent.
	MinTCIOPct *float64 `json:"min_tcio_pct,omitempty"`
	// MinJobsPerSec is the minimum replay throughput.
	MinJobsPerSec *float64 `json:"min_jobs_per_sec,omitempty"`
	// MaxP99Ms caps the p99 per-decision latency (serve pipeline).
	MaxP99Ms *float64 `json:"max_p99_ms,omitempty"`
}

// ParseThresholds decodes and validates a thresholds.json body.
func ParseThresholds(data []byte) (*Thresholds, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Thresholds
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("scenario: parsing thresholds: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after thresholds")
	}
	return &t, nil
}

// Check returns one violation string per failed bound, empty when the
// stats clear every configured threshold.
func (t *Thresholds) Check(s Stats) []string {
	if t == nil {
		return nil
	}
	var out []string
	if t.MinTCOPct != nil && s.TCOPct < *t.MinTCOPct {
		out = append(out, fmt.Sprintf("TCO savings %.3f%% below threshold %.3f%%", s.TCOPct, *t.MinTCOPct))
	}
	if t.MinTCIOPct != nil && s.TCIOPct < *t.MinTCIOPct {
		out = append(out, fmt.Sprintf("TCIO savings %.3f%% below threshold %.3f%%", s.TCIOPct, *t.MinTCIOPct))
	}
	if t.MinJobsPerSec != nil && s.JobsPerSec < *t.MinJobsPerSec {
		out = append(out, fmt.Sprintf("throughput %.0f jobs/s below threshold %.0f", s.JobsPerSec, *t.MinJobsPerSec))
	}
	if t.MaxP99Ms != nil && s.P99Ms > *t.MaxP99Ms {
		out = append(out, fmt.Sprintf("p99 %.2f ms above threshold %.2f ms", s.P99Ms, *t.MaxP99Ms))
	}
	return out
}
