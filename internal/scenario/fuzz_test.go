package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenarioSpec fuzzes the spec parser with two properties:
// malformed input errors but never panics, and a spec that parses
// marshals back to JSON that re-parses to a deeply equal spec (defaults
// apply at run time, so parsing is a pure, stable decode).
func FuzzScenarioSpec(f *testing.F) {
	// Seed with the real corpus so mutations start from live shapes.
	if pkgs, err := Discover(repoScenarios); err == nil {
		for _, p := range pkgs {
			if data, err := os.ReadFile(filepath.Join(p.Dir, SpecFile)); err == nil {
				f.Add(data)
			}
		}
	}
	for _, s := range []string{
		validSpecJSON,
		`{}`,
		`not json at all`,
		`{"name": "x", "pipeline": "sim"}`,
		`{"name": "f", "pipeline": "fleet", "fleet": {"clusters": 2, "seed": 1, "days": 1}}`,
		`{"name": "t", "pipeline": "sim", "trace": {"segments": [{"seed": 1, "users": 1, "days": 0.1}]}} trailing`,
		`{"name": "t", "pipeline": "sim", "trace": {"segments": [{"seed": 1, "users": 1, "days": 1e308}]}}`,
		`{"name": "t", "pipeline": "online", "trace": {"segments": [{"seed": 1, "users": 1, "days": 1, "weights": {"query": 1}}]}, "run": {"driftTV": 0.5}}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("valid spec failed to marshal: %v", err)
		}
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("marshal of a valid spec no longer parses: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the spec:\n%+v\n%+v", s, s2)
		}
	})
}
