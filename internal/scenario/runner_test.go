package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// tinySpec renders a fast sim scenario for runner tests: half a
// virtual day, two users, a two-round model.
func tinySpec(name string) string {
	return fmt.Sprintf(`{
  "name": %q,
  "pipeline": "sim",
  "trace": {"segments": [{"cluster": "t", "seed": 3, "users": 2, "days": 0.5}]},
  "train": {"rounds": 2, "categories": 2},
  "run": {"quotaFrac": 0.1}
}`, name)
}

// writePkg lays out one scenario package under root.
func writePkg(t *testing.T, root, name, spec, thresholds string) string {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, SpecFile), []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if thresholds != "" {
		if err := os.WriteFile(filepath.Join(dir, ThresholdsFile), []byte(thresholds), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDiscover(t *testing.T) {
	root := t.TempDir()
	writePkg(t, root, "beta", tinySpec("beta"), "")
	writePkg(t, root, "alpha", tinySpec("alpha"), `{"min_tco_pct": 0}`)
	// Hidden directories are skipped, not errors.
	if err := os.MkdirAll(filepath.Join(root, ".git"), 0o755); err != nil {
		t.Fatal(err)
	}
	pkgs, err := Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 || pkgs[0].Name != "alpha" || pkgs[1].Name != "beta" {
		t.Fatalf("want [alpha beta], got %v", pkgs)
	}
	if pkgs[0].Thresholds == nil || pkgs[1].Thresholds != nil {
		t.Fatalf("thresholds loaded wrong: %+v %+v", pkgs[0].Thresholds, pkgs[1].Thresholds)
	}
}

func TestDiscoverErrors(t *testing.T) {
	if _, err := Discover(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing root accepted")
	}
	empty := t.TempDir()
	if _, err := Discover(empty); err == nil {
		t.Fatal("empty root accepted")
	}

	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "bare"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Discover(root); err == nil {
		t.Fatal("subdirectory without scenario.json accepted")
	}

	root = t.TempDir()
	writePkg(t, root, "dir-name", tinySpec("other-name"), "")
	_, err := Discover(root)
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("name mismatch not rejected: %v", err)
	}

	root = t.TempDir()
	writePkg(t, root, "badth", tinySpec("badth"), `{"bogus": 1}`)
	if _, err := Discover(root); err == nil {
		t.Fatal("malformed thresholds accepted")
	}
}

func TestRunAllUpdateThenCompare(t *testing.T) {
	root := t.TempDir()
	dir := writePkg(t, root, "tiny", tinySpec("tiny"), "")

	// First run without a golden must fail and point at -update.
	out, err := RunAll(RunnerConfig{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Passed() || out[0].GoldenErr == nil ||
		!strings.Contains(out[0].GoldenErr.Error(), "-update") {
		t.Fatalf("missing golden not flagged: %+v", out[0])
	}
	if out[0].Status() != "FAIL" {
		t.Fatalf("status = %s, want FAIL", out[0].Status())
	}

	// Update writes the golden; the run still passes thresholds.
	out, err = RunAll(RunnerConfig{Dir: root, Update: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Passed() || !out[0].Updated {
		t.Fatalf("update run: %+v", out[0])
	}
	first, err := os.ReadFile(filepath.Join(dir, GoldenFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("empty golden written")
	}

	// A plain re-run passes; a second -update regenerates byte-identically.
	out, _ = RunAll(RunnerConfig{Dir: root})
	if !out[0].Passed() {
		t.Fatalf("clean re-run failed: %v", out[0].Failures())
	}
	out, _ = RunAll(RunnerConfig{Dir: root, Update: true})
	if !out[0].Passed() {
		t.Fatalf("second update failed: %v", out[0].Failures())
	}
	second, err := os.ReadFile(filepath.Join(dir, GoldenFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("-update is not byte-stable:\n%s\n---\n%s", first, second)
	}

	// A corrupted golden fails the diff.
	if err := os.WriteFile(filepath.Join(dir, GoldenFile), append([]byte("x"), first...), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ = RunAll(RunnerConfig{Dir: root})
	if out[0].Passed() || out[0].GoldenErr == nil {
		t.Fatalf("golden diff not flagged: %+v", out[0])
	}
}

func TestRunAllFilter(t *testing.T) {
	root := t.TempDir()
	writePkg(t, root, "keep", tinySpec("keep"), "")
	writePkg(t, root, "drop", tinySpec("drop"), "")
	out, err := RunAll(RunnerConfig{Dir: root, Filter: regexp.MustCompile(`^keep$`), Update: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Pkg.Name != "keep" {
		t.Fatalf("filter kept %v", out)
	}
	if _, err := RunAll(RunnerConfig{Dir: root, Filter: regexp.MustCompile(`^none$`)}); err == nil {
		t.Fatal("empty filter match accepted")
	}
}

func TestRunAllThresholdViolation(t *testing.T) {
	root := t.TempDir()
	writePkg(t, root, "gated", tinySpec("gated"), `{"min_tco_pct": 99.9}`)
	out, err := RunAll(RunnerConfig{Dir: root, Update: true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Passed() || len(out[0].Violations) == 0 {
		t.Fatalf("impossible threshold passed: %+v", out[0])
	}
	if out[0].Status() != "FAIL" {
		t.Fatalf("status = %s, want FAIL", out[0].Status())
	}
	found := false
	for _, f := range out[0].Failures() {
		if strings.Contains(f, "TCO savings") && strings.Contains(f, "99.9") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation text missing: %v", out[0].Failures())
	}
}

func TestAppendHistory(t *testing.T) {
	root := t.TempDir()
	writePkg(t, root, "tiny", tinySpec("tiny"), "")
	out, err := RunAll(RunnerConfig{Dir: root, Update: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	when := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 2; i++ {
		if err := AppendHistory(path, when.Add(time.Duration(i)*time.Hour), out); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist BenchHistory
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Runs) != 2 {
		t.Fatalf("want 2 runs, got %d", len(hist.Runs))
	}
	r := hist.Runs[1]
	if r.Date != "2026-08-08T13:00:00Z" {
		t.Fatalf("date = %s", r.Date)
	}
	if len(r.Scenarios) != 1 || r.Scenarios[0].Name != "tiny" ||
		r.Scenarios[0].Status != "PASS" || r.Scenarios[0].Stats.Jobs == 0 {
		t.Fatalf("scenario entry: %+v", r.Scenarios)
	}

	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, when, out); err == nil {
		t.Fatal("malformed history accepted")
	}
}
