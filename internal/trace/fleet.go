package trace

import (
	"fmt"
	"math/rand"
)

// FleetConfig seeds a heterogeneous multi-cluster fleet. The paper's
// deployment story is fleet-level: models are trained per cluster
// because "the distribution of applications is uneven among clusters",
// and the evaluation reports results across ten clusters with very
// different mixes. FleetSpecs extends ClusterConfigs with the remaining
// axes of heterogeneity a fleet simulation needs — arrival scale,
// noise, population size and SSD quota — all drawn from one base seed
// so a fleet is fully reproducible from (NumClusters, BaseSeed).
type FleetConfig struct {
	// NumClusters is the fleet size.
	NumClusters int
	// BaseSeed drives every cluster's generator and the per-cluster
	// heterogeneity draws.
	BaseSeed int64
	// DurationSec is the trace length per cluster (0 = the
	// DefaultGeneratorConfig two-week window).
	DurationSec float64
	// Users is the base user population per cluster before the
	// per-cluster jitter (0 = the default 12).
	Users int
}

// ClusterSpec is one cluster's generation parameters plus the
// placement-relevant knob the fleet simulator consumes directly: the
// SSD quota, expressed — exactly as the paper's sweeps do — as a
// fraction of the cluster's own peak SSD usage.
type ClusterSpec struct {
	Gen GeneratorConfig
	// QuotaFrac is the cluster's SSD quota as a fraction of the peak
	// simultaneous footprint of its evaluation trace.
	QuotaFrac float64
}

// Validate checks a spec is simulatable.
func (s *ClusterSpec) Validate() error {
	switch {
	case s.Gen.Cluster == "":
		return fmt.Errorf("trace: cluster spec has empty cluster name")
	case s.Gen.NumUsers < 1:
		return fmt.Errorf("trace: cluster %s has %d users", s.Gen.Cluster, s.Gen.NumUsers)
	case s.Gen.DurationSec <= 0:
		return fmt.Errorf("trace: cluster %s has non-positive duration %g", s.Gen.Cluster, s.Gen.DurationSec)
	case s.QuotaFrac <= 0:
		return fmt.Errorf("trace: cluster %s has non-positive quota fraction %g", s.Gen.Cluster, s.QuotaFrac)
	}
	return nil
}

// FleetSpecs builds NumClusters heterogeneous cluster specs: uneven
// archetype mixes (via the ClusterConfigs weight draws, including the
// pathological mltrain-only cluster at index 3 when the fleet is large
// enough), per-cluster arrival scales, noise scales, user populations
// and SSD quotas. Deterministic in the config.
func FleetSpecs(fc FleetConfig) ([]ClusterSpec, error) {
	if fc.NumClusters < 1 {
		return nil, fmt.Errorf("trace: fleet needs >= 1 cluster, got %d", fc.NumClusters)
	}
	cfgs := ClusterConfigs(fc.NumClusters, fc.BaseSeed)
	specs := make([]ClusterSpec, fc.NumClusters)
	for i, cfg := range cfgs {
		// A separate stream from the generator's own seed, so adding
		// heterogeneity axes never perturbs the generated jobs of a
		// cluster that opts out of them.
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0xf1ee7))
		if fc.DurationSec > 0 {
			cfg.DurationSec = fc.DurationSec
		}
		if fc.Users > 0 {
			cfg.NumUsers = fc.Users
		}
		// Population jitter: ±1/3 of the base, at least 2 users.
		jitter := cfg.NumUsers / 3
		if jitter > 0 {
			cfg.NumUsers += rng.Intn(2*jitter+1) - jitter
		}
		if cfg.NumUsers < 2 {
			cfg.NumUsers = 2
		}
		// Arrival scale in [0.6, 1.8): some clusters run far hotter
		// than others, which is what makes one global quota-tuning
		// impossible and per-cluster models worth their keep.
		cfg.LoadScale = 0.6 + 1.2*rng.Float64()
		// Noise scale in [0.8, 1.3): per-cluster learnability spread.
		cfg.NoiseScale = 0.8 + 0.5*rng.Float64()
		specs[i] = ClusterSpec{
			Gen: cfg,
			// Quota in [2%, 12%) of peak — the steep region of the
			// paper's savings-vs-quota curves.
			QuotaFrac: 0.02 + 0.1*rng.Float64(),
		}
	}
	return specs, nil
}
