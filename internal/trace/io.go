package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSONL serializes a trace as JSON lines: one header line with the
// cluster name followed by one line per job. The format is append- and
// stream-friendly, which matters for multi-week traces.
func WriteJSONL(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	header := struct {
		Cluster string `json:"cluster"`
		NumJobs int    `json:"num_jobs"`
	}{t.Cluster, len(t.Jobs)}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	for _, j := range t.Jobs {
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("trace: encode job %s: %w", j.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL deserializes a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	dec := json.NewDecoder(br)
	var header struct {
		Cluster string `json:"cluster"`
		NumJobs int    `json:"num_jobs"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	t := &Trace{Cluster: header.Cluster, Jobs: make([]*Job, 0, header.NumJobs)}
	for {
		var j Job
		if err := dec.Decode(&j); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode job: %w", err)
		}
		t.Jobs = append(t.Jobs, &j)
	}
	if header.NumJobs != 0 && len(t.Jobs) != header.NumJobs {
		return nil, fmt.Errorf("trace: header claims %d jobs, found %d", header.NumJobs, len(t.Jobs))
	}
	return t, nil
}

// SaveFile writes the trace to a file using WriteJSONL.
func SaveFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := WriteJSONL(f, t); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a trace from a file written by SaveFile.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f)
}
