package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Archetype captures one class of workload behaviour. Pipelines are
// instances of an archetype with per-pipeline multipliers; steps within
// a pipeline are job templates with per-step multipliers. The archetype
// drives both the I/O behaviour (and hence the job's true importance)
// and the execution-metadata strings, which is what makes the placement
// problem learnable from application-level features — the property the
// whole BYOM design relies on.
type Archetype struct {
	Name string

	// Lognormal parameters for the peak intermediate-file size in bytes.
	SizeMu, SizeSigma float64
	// Lognormal parameters for the job lifetime in seconds.
	LifeMu, LifeSigma float64
	// Reads = size * readFactor; lognormal.
	ReadFactorMu, ReadFactorSigma float64
	// Writes = size * writeAmp; lognormal (>= ~1, data is written once
	// plus sorter rewrites).
	WriteAmpMu, WriteAmpSigma float64
	// Mean read-operation size in bytes; lognormal. Small random reads
	// are HDD-hostile (high TCIO), large sequential ones are benign.
	ReadSizeMu, ReadSizeSigma float64
	// CacheHitMean/Spread parameterize the DRAM-cache hit fraction.
	CacheHitMean, CacheHitSpread float64

	// Arrival process: if PeriodSec > 0 the template reruns periodically
	// with jitter; otherwise arrivals are Poisson with MeanInterSec.
	PeriodSec    float64
	MeanInterSec float64

	// DiurnalAmp in [0,1) scales arrival intensity with hour-of-day.
	DiurnalAmp float64
}

// builtinArchetypes returns the archetype library. The mix reproduces the
// paper's observation (Fig. 1) that workloads differ by orders of
// magnitude in space usage and lifetime, and Section 5.2's split between
// HDD-suitable and SSD-suitable pipelines.
func builtinArchetypes() []Archetype {
	const (
		kib = 1024.0
		mib = 1024 * kib
		gib = 1024 * mib
	)
	ln := math.Log
	return []Archetype{
		{
			// Log processing: huge sequential write-mostly shuffles,
			// cheap on HDD (negative TCO savings on SSD: wear dominates).
			Name:   "logproc",
			SizeMu: ln(64 * gib), SizeSigma: 1.2,
			LifeMu: ln(2 * 3600), LifeSigma: 0.7,
			ReadFactorMu: ln(0.9), ReadFactorSigma: 0.4,
			WriteAmpMu: ln(2.2), WriteAmpSigma: 0.3,
			ReadSizeMu: ln(2 * mib), ReadSizeSigma: 0.4,
			CacheHitMean: 0.55, CacheHitSpread: 0.15,
			PeriodSec:  5400,
			DiurnalAmp: 0.2,
		},
		{
			// Interactive query / table joins: many hot small random
			// reads over a modest footprint — prime SSD candidates.
			Name:   "query",
			SizeMu: ln(48 * gib), SizeSigma: 1.4,
			LifeMu: ln(3600), LifeSigma: 0.9,
			ReadFactorMu: ln(8), ReadFactorSigma: 0.8,
			WriteAmpMu: ln(1.3), WriteAmpSigma: 0.25,
			ReadSizeMu: ln(48 * kib), ReadSizeSigma: 0.7,
			CacheHitMean: 0.25, CacheHitSpread: 0.15,
			MeanInterSec: 900,
			DiurnalAmp:   0.7,
		},
		{
			// ML training checkpoints: large writes, rare reads, long
			// retention — HDD-suitable (wearout on SSD never pays off).
			Name:   "mltrain",
			SizeMu: ln(128 * gib), SizeSigma: 1.0,
			LifeMu: ln(12 * 3600), LifeSigma: 0.8,
			ReadFactorMu: ln(0.15), ReadFactorSigma: 0.6,
			WriteAmpMu: ln(1.1), WriteAmpSigma: 0.15,
			ReadSizeMu: ln(8 * mib), ReadSizeSigma: 0.3,
			CacheHitMean: 0.35, CacheHitSpread: 0.2,
			PeriodSec:  3 * 3600,
			DiurnalAmp: 0.05,
		},
		{
			// Streaming aggregation: tiny, short-lived, very hot files.
			Name:   "streaming",
			SizeMu: ln(6 * gib), SizeSigma: 1.1,
			LifeMu: ln(1800), LifeSigma: 0.8,
			ReadFactorMu: ln(10), ReadFactorSigma: 0.7,
			WriteAmpMu: ln(1.5), WriteAmpSigma: 0.3,
			ReadSizeMu: ln(64 * kib), ReadSizeSigma: 0.6,
			CacheHitMean: 0.3, CacheHitSpread: 0.15,
			MeanInterSec: 1000,
			DiurnalAmp:   0.5,
		},
		{
			// Scientific simulation sweeps: medium balanced I/O,
			// borderline placement (in between, per Section 2.2).
			Name:   "simulation",
			SizeMu: ln(8 * gib), SizeSigma: 1.3,
			LifeMu: ln(3600), LifeSigma: 0.9,
			ReadFactorMu: ln(5), ReadFactorSigma: 0.9,
			WriteAmpMu: ln(1.6), WriteAmpSigma: 0.4,
			ReadSizeMu: ln(256 * kib), ReadSizeSigma: 0.9,
			CacheHitMean: 0.4, CacheHitSpread: 0.2,
			PeriodSec:  4 * 3600,
			DiurnalAmp: 0.1,
		},
		{
			// Video processing: very large, mostly-sequential reads.
			Name:   "videoproc",
			SizeMu: ln(200 * gib), SizeSigma: 0.9,
			LifeMu: ln(3 * 3600), LifeSigma: 0.6,
			ReadFactorMu: ln(2.2), ReadFactorSigma: 0.5,
			WriteAmpMu: ln(1.2), WriteAmpSigma: 0.2,
			ReadSizeMu: ln(1 * mib), ReadSizeSigma: 0.4,
			CacheHitMean: 0.4, CacheHitSpread: 0.15,
			PeriodSec:  3 * 3600,
			DiurnalAmp: 0.15,
		},
		{
			// Database batch jobs: medium footprint, moderately random.
			Name:   "dbbatch",
			SizeMu: ln(24 * gib), SizeSigma: 1.2,
			LifeMu: ln(1800), LifeSigma: 0.8,
			ReadFactorMu: ln(6), ReadFactorSigma: 0.8,
			WriteAmpMu: ln(1.4), WriteAmpSigma: 0.3,
			ReadSizeMu: ln(128 * kib), ReadSizeSigma: 0.8,
			CacheHitMean: 0.3, CacheHitSpread: 0.15,
			PeriodSec:  5400,
			DiurnalAmp: 0.4,
		},
	}
}

// Archetypes returns a copy of the built-in archetype library.
func Archetypes() []Archetype { return builtinArchetypes() }

// GeneratorConfig configures a synthetic cluster workload.
type GeneratorConfig struct {
	Cluster     string
	Seed        int64
	NumUsers    int
	MinPipes    int // pipelines per user, min
	MaxPipes    int // pipelines per user, max
	MinSteps    int // shuffle steps per pipeline, min
	MaxSteps    int // shuffle steps per pipeline, max
	DurationSec float64
	// ArchetypeWeights selects the archetype mix; nil = uniform. Keys
	// are archetype names; missing names get weight 0.
	ArchetypeWeights map[string]float64
	// LoadScale multiplies arrival rates (1 = default).
	LoadScale float64
	// NoiseScale multiplies per-job lognormal noise sigmas (1 = default).
	// Larger values make the placement problem harder to learn.
	NoiseScale float64
}

// DefaultGeneratorConfig returns a medium-sized cluster config producing
// a workload comparable (in relative diversity, not absolute scale) to
// one of the paper's evaluation clusters.
func DefaultGeneratorConfig(cluster string, seed int64) GeneratorConfig {
	return GeneratorConfig{
		Cluster:     cluster,
		Seed:        seed,
		NumUsers:    12,
		MinPipes:    1,
		MaxPipes:    4,
		MinSteps:    1,
		MaxSteps:    4,
		DurationSec: 14 * 24 * 3600, // two contiguous weeks: train + test
		LoadScale:   1,
		NoiseScale:  1,
	}
}

// ClusterConfigs builds n distinct cluster configurations with uneven
// archetype distributions (the paper: "the distribution of applications
// is uneven among clusters"). Cluster index 3 is the pathological
// cluster used in Fig. 8: it runs only workloads rare elsewhere.
func ClusterConfigs(n int, baseSeed int64) []GeneratorConfig {
	arch := builtinArchetypes()
	out := make([]GeneratorConfig, n)
	for i := 0; i < n; i++ {
		cfg := DefaultGeneratorConfig(fmt.Sprintf("C%d", i), baseSeed+int64(i)*7919)
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
		w := map[string]float64{}
		if i == 3 {
			// Special cluster: only ML-training style workloads, which
			// are rare in other clusters' mixes.
			w["mltrain"] = 1
			w["videoproc"] = 0.15
		} else {
			for _, a := range arch {
				base := 0.2 + rng.Float64()
				if a.Name == "mltrain" {
					base *= 0.15 // rare elsewhere
				}
				w[a.Name] = base
			}
		}
		cfg.ArchetypeWeights = w
		out[i] = cfg
	}
	return out
}

// jobTemplate is one recurring shuffle step: the generator's hidden
// ground truth from which both job behaviour and features derive.
type jobTemplate struct {
	arch     Archetype
	user     string
	pipeline string
	step     string
	stepIdx  int

	// Per-template multipliers (drawn once).
	sizeMul, lifeMul, readMul, writeMul, readSizeMul float64
	cacheHit                                         float64
	periodSec                                        float64 // 0 => Poisson
	meanInterSec                                     float64
	phase                                            float64

	meta Metadata

	// Running history of realized executions (feature group A).
	histTCIO, histSize, histLife, histDensity float64
	histRuns                                  int
}

// Generator produces synthetic cluster traces.
type Generator struct {
	cfg       GeneratorConfig
	rng       *rand.Rand
	templates []*jobTemplate
}

// NewGenerator builds the hidden template population for a cluster.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.LoadScale <= 0 {
		cfg.LoadScale = 1
	}
	if cfg.NoiseScale <= 0 {
		cfg.NoiseScale = 1
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.buildTemplates()
	return g
}

func (g *Generator) buildTemplates() {
	arch := builtinArchetypes()
	weights := make([]float64, len(arch))
	var total float64
	for i, a := range arch {
		w := 1.0
		if g.cfg.ArchetypeWeights != nil {
			w = g.cfg.ArchetypeWeights[a.Name]
		}
		weights[i] = w
		total += w
	}
	if total <= 0 {
		for i := range weights {
			weights[i] = 1
		}
		total = float64(len(weights))
	}
	pickArch := func() Archetype {
		x := g.rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return arch[i]
			}
		}
		return arch[len(arch)-1]
	}

	for u := 0; u < g.cfg.NumUsers; u++ {
		user := fmt.Sprintf("user%02d", u)
		nPipes := g.cfg.MinPipes + g.rng.Intn(g.cfg.MaxPipes-g.cfg.MinPipes+1)
		for p := 0; p < nPipes; p++ {
			a := pickArch()
			pipeline := fmt.Sprintf("%s-%s-p%02d%02d", user, a.Name, u, p)
			nSteps := g.cfg.MinSteps + g.rng.Intn(g.cfg.MaxSteps-g.cfg.MinSteps+1)
			// Per-pipeline multipliers shared by all steps.
			pSize := g.logn(0, 0.5*a.SizeSigma)
			pLife := g.logn(0, 0.4*a.LifeSigma)
			for s := 0; s < nSteps; s++ {
				t := &jobTemplate{
					arch:        a,
					user:        user,
					pipeline:    pipeline,
					step:        fmt.Sprintf("s%d", s),
					stepIdx:     s,
					sizeMul:     pSize * g.logn(0, 0.5*a.SizeSigma),
					lifeMul:     pLife * g.logn(0, 0.4*a.LifeSigma),
					readMul:     g.logn(0, a.ReadFactorSigma),
					writeMul:    g.logn(0, 1.5*a.WriteAmpSigma),
					readSizeMul: g.logn(0, 0.7*a.ReadSizeSigma),
					cacheHit:    clamp01(a.CacheHitMean + (g.rng.Float64()*2-1)*a.CacheHitSpread),
					phase:       g.rng.Float64(),
				}
				if a.PeriodSec > 0 {
					t.periodSec = a.PeriodSec * g.logn(0, 0.15)
				} else {
					t.meanInterSec = a.MeanInterSec * g.logn(0, 0.3)
				}
				t.meta = g.makeMetadata(t)
				g.templates = append(g.templates, t)
			}
		}
	}
}

// makeMetadata builds execution-metadata strings in the style of the
// paper's Table 3 examples. The archetype name is embedded as a token,
// making metadata (group B) predictive of the TCO-savings sign — the
// paper's Fig. 9c finding.
func (g *Generator) makeMetadata(t *jobTemplate) Metadata {
	return Metadata{
		BuildTargetName: fmt.Sprintf("//production/%s/%s:%s_main", t.arch.Name, t.pipeline, t.step),
		ExecutionName:   fmt.Sprintf("com.example.%s.%s.launcher.Main", t.arch.Name, t.pipeline),
		PipelineName:    fmt.Sprintf("org_%s.%s-dims.prod.%s", t.user, t.pipeline, t.arch.Name),
		StepName:        fmt.Sprintf("%s-open-shuffle%d", t.step, t.stepIdx),
		UserName:        fmt.Sprintf("GroupByKey-%d", t.stepIdx*11+3),
	}
}

func (g *Generator) logn(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.rng.NormFloat64())
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// diurnalFactor modulates arrival intensity by hour-of-day.
func diurnalFactor(amp, atSec float64) float64 {
	hour := math.Mod(atSec/3600, 24)
	return 1 + amp*math.Sin(2*math.Pi*(hour-9)/24)
}

// Generate produces the full trace for the configured window, sorted by
// arrival time. Generation is deterministic given the config.
func (g *Generator) Generate() *Trace {
	tr := &Trace{Cluster: g.cfg.Cluster}
	seq := 0
	for _, t := range g.templates {
		arrivals := g.arrivalTimes(t)
		for _, at := range arrivals {
			j := g.instantiate(t, at, seq)
			tr.Jobs = append(tr.Jobs, j)
			seq++
		}
	}
	tr.Sort()
	return tr
}

func (g *Generator) arrivalTimes(t *jobTemplate) []float64 {
	var out []float64
	dur := g.cfg.DurationSec
	if t.periodSec > 0 {
		period := t.periodSec / g.cfg.LoadScale
		at := t.phase * period
		for at < dur {
			jit := period * 0.05 * g.rng.NormFloat64()
			a := at + jit
			if a >= 0 && a < dur {
				out = append(out, a)
			}
			at += period
		}
		return out
	}
	// Non-homogeneous Poisson via thinning against the diurnal profile.
	mean := t.meanInterSec / g.cfg.LoadScale
	at := g.rng.ExpFloat64() * mean
	for at < dur {
		f := diurnalFactor(t.arch.DiurnalAmp, at)
		if g.rng.Float64() < f/(1+t.arch.DiurnalAmp) {
			out = append(out, at)
		}
		at += g.rng.ExpFloat64() * mean
	}
	return out
}

// instantiate realizes one execution of a template at the given arrival
// time and updates the template's running history.
func (g *Generator) instantiate(t *jobTemplate, at float64, seq int) *Job {
	ns := g.cfg.NoiseScale
	a := t.arch
	size := math.Exp(a.SizeMu) * t.sizeMul * g.logn(0, 0.35*a.SizeSigma*ns)
	life := math.Exp(a.LifeMu) * t.lifeMul * g.logn(0, 0.3*a.LifeSigma*ns)
	if life < 10 {
		life = 10
	}
	readFactor := math.Exp(a.ReadFactorMu) * t.readMul * g.logn(0, a.ReadFactorSigma*0.5*ns)
	writeAmp := math.Exp(a.WriteAmpMu) * t.writeMul * g.logn(0, a.WriteAmpSigma*0.5*ns)
	if writeAmp < 1 {
		writeAmp = 1
	}
	readSize := math.Exp(a.ReadSizeMu) * t.readSizeMul * g.logn(0, 0.3*a.ReadSizeSigma*ns)
	if readSize < 4096 {
		readSize = 4096
	}
	cacheHit := clamp01(t.cacheHit + 0.05*ns*g.rng.NormFloat64())

	readBytes := size * readFactor
	writeBytes := size * writeAmp

	j := &Job{
		ID:               fmt.Sprintf("%s-j%06d", g.cfg.Cluster, seq),
		Cluster:          g.cfg.Cluster,
		User:             t.user,
		Pipeline:         t.pipeline,
		Step:             t.step,
		ArrivalSec:       at,
		LifetimeSec:      life,
		SizeBytes:        size,
		ReadBytes:        readBytes,
		WriteBytes:       writeBytes,
		AvgReadSizeBytes: readSize,
		CacheHitFrac:     cacheHit,
		Meta:             t.meta,
		Resources:        g.makeResources(t, size, writeBytes),
	}

	// Feature group A: history of previously completed executions of
	// this template with observation noise. First runs see zeros (no
	// history yet), matching the cold-start case for new pipelines.
	if t.histRuns > 0 {
		n := float64(t.histRuns)
		obs := func(v float64) float64 { return v / n * g.logn(0, 0.1*ns) }
		j.History = History{
			AvgTCIO:      obs(t.histTCIO),
			AvgSizeBytes: obs(t.histSize),
			AvgLifetime:  obs(t.histLife),
			AvgIODensity: obs(t.histDensity),
			NumRuns:      t.histRuns,
		}
	}

	// Update running history with this execution's realized values.
	// The TCIO proxy recorded here mirrors the cost model's computation:
	// effective HDD operations per second of lifetime.
	effReadOps := readBytes / readSize * (1 - cacheHit)
	effWriteOps := writeBytes / (1 << 20)
	tcio := (effReadOps + effWriteOps) / life / 150.0
	t.histTCIO += tcio
	t.histSize += size
	t.histLife += life
	t.histDensity += (readBytes + writeBytes) / size
	t.histRuns++

	return j
}

func (g *Generator) makeResources(t *jobTemplate, size, writeBytes float64) Resources {
	// Resources are scheduler-assigned before execution and correlate
	// with the job's expected scale (group C features).
	workers := int(math.Ceil(math.Pow(size/(256*1<<20), 0.6)))
	if workers < 1 {
		workers = 1
	}
	workers += g.rng.Intn(3)
	threads := 4 + g.rng.Intn(12)
	buckets := workers * (2 + g.rng.Intn(6))
	initialBuckets := buckets
	if g.rng.Float64() < 0.3 {
		initialBuckets = buckets / 2
		if initialBuckets < 1 {
			initialBuckets = 1
		}
	}
	shards := workers * threads
	records := int64(writeBytes / (256 + float64(g.rng.Intn(3800))))
	return Resources{
		BucketSizingInitialNumStripes: 1 + g.rng.Intn(8),
		BucketSizingNumShards:         shards,
		BucketSizingNumWorkerThreads:  threads,
		BucketSizingNumWorkers:        workers,
		InitialNumBuckets:             initialBuckets,
		NumBuckets:                    buckets,
		RecordsWritten:                records,
		RequestedNumShards:            shards + g.rng.Intn(shards+1),
	}
}
