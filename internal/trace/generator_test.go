package trace

import (
	"math"
	"testing"
)

func genTrace(t *testing.T, seed int64) *Trace {
	t.Helper()
	cfg := DefaultGeneratorConfig("C0", seed)
	cfg.DurationSec = 3 * 24 * 3600
	tr := NewGenerator(cfg).Generate()
	if len(tr.Jobs) == 0 {
		t.Fatal("generator produced no jobs")
	}
	return tr
}

func TestGeneratorDeterminism(t *testing.T) {
	a := genTrace(t, 11)
	b := genTrace(t, 11)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("non-deterministic job count: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if *a.Jobs[i] != *b.Jobs[i] {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
	c := genTrace(t, 12)
	if len(a.Jobs) == len(c.Jobs) {
		same := true
		for i := range a.Jobs {
			if a.Jobs[i].SizeBytes != c.Jobs[i].SizeBytes {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGeneratorJobsValid(t *testing.T) {
	tr := genTrace(t, 3)
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	for _, j := range tr.Jobs {
		if j.ArrivalSec < 0 || j.ArrivalSec > 3*24*3600 {
			t.Fatalf("job %s arrival %g outside window", j.ID, j.ArrivalSec)
		}
		if j.WriteBytes < j.SizeBytes {
			t.Fatalf("job %s writes %g < size %g (data must be written at least once)",
				j.ID, j.WriteBytes, j.SizeBytes)
		}
		if j.AvgReadSizeBytes < 4096 {
			t.Fatalf("job %s read size %g below floor", j.ID, j.AvgReadSizeBytes)
		}
	}
}

func TestGeneratorDiversity(t *testing.T) {
	// Fig. 1: workloads should span orders of magnitude in size and
	// lifetime. Check cross-pipeline diversity of mean job size.
	tr := genTrace(t, 5)
	bySize := map[string][]float64{}
	for _, j := range tr.Jobs {
		bySize[j.Pipeline] = append(bySize[j.Pipeline], j.SizeBytes)
	}
	if len(bySize) < 5 {
		t.Fatalf("only %d pipelines generated", len(bySize))
	}
	minMean, maxMean := math.Inf(1), math.Inf(-1)
	for _, sizes := range bySize {
		var sum float64
		for _, s := range sizes {
			sum += s
		}
		mean := sum / float64(len(sizes))
		if mean < minMean {
			minMean = mean
		}
		if mean > maxMean {
			maxMean = mean
		}
	}
	if maxMean/minMean < 50 {
		t.Errorf("pipeline mean sizes span only %.1fx, want >= 50x (Fig. 1 diversity)",
			maxMean/minMean)
	}
}

func TestGeneratorHistoryAccumulates(t *testing.T) {
	tr := genTrace(t, 7)
	// Group jobs by template in arrival order; NumRuns must increase and
	// the first execution must have zero history.
	byTemplate := map[string][]*Job{}
	for _, j := range tr.Jobs {
		k := j.TemplateKey()
		byTemplate[k] = append(byTemplate[k], j)
	}
	checkedFirst := false
	for k, jobs := range byTemplate {
		if jobs[0].History.NumRuns != 0 {
			t.Fatalf("template %s first run has history NumRuns=%d", k, jobs[0].History.NumRuns)
		}
		checkedFirst = true
		for i := 1; i < len(jobs); i++ {
			if jobs[i].History.NumRuns != i {
				t.Fatalf("template %s run %d has NumRuns=%d", k, i, jobs[i].History.NumRuns)
			}
			if jobs[i].History.AvgSizeBytes <= 0 {
				t.Fatalf("template %s run %d has no historical size", k, i)
			}
		}
	}
	if !checkedFirst {
		t.Fatal("no templates found")
	}
}

func TestGeneratorHistoryPredictive(t *testing.T) {
	// Historical average I/O density should correlate strongly with the
	// realized density — this is what makes group A features valuable.
	tr := genTrace(t, 9)
	var hist, actual []float64
	for _, j := range tr.Jobs {
		if j.History.NumRuns >= 3 {
			hist = append(hist, math.Log1p(j.History.AvgIODensity))
			actual = append(actual, math.Log1p(j.IODensity()))
		}
	}
	if len(hist) < 100 {
		t.Fatalf("too few jobs with history: %d", len(hist))
	}
	var sx, sy, sxy, sxx, syy float64
	n := float64(len(hist))
	for i := range hist {
		sx += hist[i]
		sy += actual[i]
		sxy += hist[i] * actual[i]
		sxx += hist[i] * hist[i]
		syy += actual[i] * actual[i]
	}
	corr := (sxy/n - sx/n*sy/n) / math.Sqrt((sxx/n-sx/n*sx/n)*(syy/n-sy/n*sy/n))
	if corr < 0.6 {
		t.Errorf("history/actual density correlation = %.3f, want >= 0.6", corr)
	}
}

func TestClusterConfigs(t *testing.T) {
	cfgs := ClusterConfigs(10, 1000)
	if len(cfgs) != 10 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		if names[c.Cluster] {
			t.Fatalf("duplicate cluster name %s", c.Cluster)
		}
		names[c.Cluster] = true
	}
	// Cluster 3 should be the ML-training-only outlier.
	w3 := cfgs[3].ArchetypeWeights
	if w3["mltrain"] != 1 {
		t.Errorf("cluster 3 mltrain weight = %g, want 1", w3["mltrain"])
	}
	if w3["query"] != 0 {
		t.Errorf("cluster 3 should not run query workloads")
	}
	// Other clusters should rarely run mltrain.
	if cfgs[0].ArchetypeWeights["mltrain"] >= cfgs[0].ArchetypeWeights["query"] {
		t.Errorf("cluster 0 mltrain weight should be rare")
	}
}

func TestArchetypesExposed(t *testing.T) {
	a := Archetypes()
	if len(a) < 5 {
		t.Fatalf("expected at least 5 archetypes, got %d", len(a))
	}
	seen := map[string]bool{}
	for _, ar := range a {
		if ar.Name == "" {
			t.Fatal("archetype with empty name")
		}
		if seen[ar.Name] {
			t.Fatalf("duplicate archetype %s", ar.Name)
		}
		seen[ar.Name] = true
		if ar.PeriodSec == 0 && ar.MeanInterSec == 0 {
			t.Fatalf("archetype %s has no arrival process", ar.Name)
		}
	}
	// Mutating the returned slice must not affect the library.
	a[0].Name = "mutated"
	if Archetypes()[0].Name == "mutated" {
		t.Error("Archetypes returned shared state")
	}
}

func TestDiurnalFactor(t *testing.T) {
	if f := diurnalFactor(0, 12345); f != 1 {
		t.Errorf("zero amplitude factor = %g, want 1", f)
	}
	// Peak should be around 15:00 (sin peak at hour-9 = 6).
	peak := diurnalFactor(0.5, 15*3600)
	trough := diurnalFactor(0.5, 3*3600)
	if peak <= trough {
		t.Errorf("diurnal peak %g <= trough %g", peak, trough)
	}
}
