package trace

import (
	"bytes"
	"testing"
)

// fuzzSeedTrace serializes a small generated trace — the well-formed
// corner of the fuzz corpus.
func fuzzSeedTrace(tb testing.TB) []byte {
	tb.Helper()
	cfg := DefaultGeneratorConfig("fz", 3)
	cfg.DurationSec = 2 * 3600
	cfg.NumUsers = 2
	tr := NewGenerator(cfg).Generate()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadJSONL: trace parsing must reject malformed input with an
// error — never panic — and any trace it accepts must round-trip
// through WriteJSONL/ReadJSONL preserving its shape.
func FuzzReadJSONL(f *testing.F) {
	valid := fuzzSeedTrace(f)
	f.Add(valid)
	f.Add([]byte(``))
	f.Add([]byte(`{"cluster":"c","num_jobs":0}` + "\n"))
	f.Add([]byte(`{"cluster":"c","num_jobs":3}` + "\n")) // header lies
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"cluster":"c","num_jobs":1}` + "\n" + `{"id":"j0","arrival_sec":1e999}` + "\n"))
	f.Add([]byte(`{"cluster":"c","num_jobs":1}` + "\n" + `{"id":"j0"` + "\n")) // truncated job
	f.Add(valid[:len(valid)-len(valid)/3])
	f.Add(bytes.Replace(valid, []byte(`"arrival_sec"`), []byte(`"arrival_sec":[],"x"`), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, tr); err != nil {
			t.Fatalf("re-serializing a parsed trace failed: %v", err)
		}
		tr2, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("round trip of a parsed trace failed: %v", err)
		}
		if tr2.Cluster != tr.Cluster || len(tr2.Jobs) != len(tr.Jobs) {
			t.Fatalf("round trip changed shape: %q/%d jobs -> %q/%d jobs",
				tr.Cluster, len(tr.Jobs), tr2.Cluster, len(tr2.Jobs))
		}
	})
}
