// Package trace defines the workload model of the reproduction — shuffle
// jobs with the attributes and application-level features described in
// Sections 3 and 4.1 of the paper — together with a hierarchical synthetic
// workload generator that stands in for Google's production traces and
// JSON-lines (de)serialization.
//
// The basic data placement unit is a shuffle Job with four placement
// attributes (start time, lifetime, size, cost inputs) plus the feature
// groups from Table 2: historical system metrics, allocated resources,
// job timestamps and execution metadata.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Metadata holds the execution-metadata string features (feature group B
// in the paper, Table 2). Strings detail execution-related names, paths
// and targets; key elements are separated by non-alphanumeric characters.
type Metadata struct {
	BuildTargetName string `json:"build_target_name"`
	ExecutionName   string `json:"execution_name"`
	PipelineName    string `json:"pipeline_name"`
	StepName        string `json:"step_name"`
	UserName        string `json:"user_name"`
}

// Resources holds the allocated-resource features (feature group C),
// assigned by the cluster scheduler before the job starts.
type Resources struct {
	BucketSizingInitialNumStripes int   `json:"bucket_sizing_initial_num_stripes"`
	BucketSizingNumShards         int   `json:"bucket_sizing_num_shards"`
	BucketSizingNumWorkerThreads  int   `json:"bucket_sizing_num_worker_threads"`
	BucketSizingNumWorkers        int   `json:"bucket_sizing_num_workers"`
	InitialNumBuckets             int   `json:"initial_num_buckets"`
	NumBuckets                    int   `json:"num_buckets"`
	RecordsWritten                int64 `json:"records_written"`
	RequestedNumShards            int   `json:"requested_num_shards"`
}

// History holds the historical system metrics (feature group A): averages
// over previously completed jobs from the same user's pipelines.
type History struct {
	AvgTCIO      float64 `json:"avg_tcio"`
	AvgSizeBytes float64 `json:"avg_size_bytes"`
	AvgLifetime  float64 `json:"avg_lifetime_sec"`
	AvgIODensity float64 `json:"avg_io_density"`
	NumRuns      int     `json:"num_runs"`
}

// Job is one shuffle job: the unit of data placement. Times are seconds
// since the start of the trace. I/O quantities are post-execution
// measurements used by the cost model and for labeling; the feature
// groups (Meta, Resources, History and the arrival timestamp) are the
// only inputs available to a model at placement-decision time.
type Job struct {
	ID       string `json:"id"`
	Cluster  string `json:"cluster"`
	User     string `json:"user"`
	Pipeline string `json:"pipeline"`
	Step     string `json:"step"`

	ArrivalSec  float64 `json:"arrival_sec"`
	LifetimeSec float64 `json:"lifetime_sec"`

	// SizeBytes is the peak intermediate-file footprint of the job.
	SizeBytes float64 `json:"size_bytes"`
	// ReadBytes / WriteBytes are total bytes transferred over the
	// job's lifetime.
	ReadBytes  float64 `json:"read_bytes"`
	WriteBytes float64 `json:"write_bytes"`
	// AvgReadSizeBytes is the mean size of a read operation; small
	// random reads make a job HDD-hostile.
	AvgReadSizeBytes float64 `json:"avg_read_size_bytes"`
	// CacheHitFrac is the fraction of read I/O absorbed by the DRAM
	// cache that sits alongside HDDs in each storage server; such
	// reads never reach the disks and do not count toward TCIO.
	CacheHitFrac float64 `json:"cache_hit_frac"`

	Meta      Metadata  `json:"meta"`
	Resources Resources `json:"resources"`
	History   History   `json:"history"`
}

// EndSec returns the job's end time.
func (j *Job) EndSec() float64 { return j.ArrivalSec + j.LifetimeSec }

// TotalBytes returns read plus write bytes.
func (j *Job) TotalBytes() float64 { return j.ReadBytes + j.WriteBytes }

// IODensity is the total I/O across the job lifetime divided by its
// maximum storage footprint (Section 4.2).
func (j *Job) IODensity() float64 {
	if j.SizeBytes <= 0 {
		return 0
	}
	return j.TotalBytes() / j.SizeBytes
}

// TemplateKey identifies the job's recurring identity (pipeline + step).
// The Heuristic baseline uses it as the admission category, mirroring the
// paper's use of the job's ID as the CacheSack category.
func (j *Job) TemplateKey() string { return j.Pipeline + "/" + j.Step }

// Weekday returns the weekday (0 = Sunday) of the job's arrival assuming
// the trace starts at the Epoch below.
func (j *Job) Weekday() int {
	return int(Epoch.Add(time.Duration(j.ArrivalSec * float64(time.Second))).Weekday())
}

// HourOfDay returns the hour-of-day [0, 24) of the job's arrival.
func (j *Job) HourOfDay() int {
	return int(math.Mod(j.ArrivalSec/3600, 24))
}

// SecondOfDay returns the second within the arrival day [0, 86400).
func (j *Job) SecondOfDay() float64 {
	return math.Mod(j.ArrivalSec, 86400)
}

// Epoch anchors trace-relative times to a calendar (a Monday) so weekday
// features are meaningful.
var Epoch = time.Date(2024, time.January, 1, 0, 0, 0, 0, time.UTC)

// Validate performs basic sanity checks on a job.
func (j *Job) Validate() error {
	switch {
	case j.ID == "":
		return fmt.Errorf("trace: job has empty ID")
	case j.LifetimeSec <= 0:
		return fmt.Errorf("trace: job %s has non-positive lifetime %g", j.ID, j.LifetimeSec)
	case j.SizeBytes <= 0:
		return fmt.Errorf("trace: job %s has non-positive size %g", j.ID, j.SizeBytes)
	case j.ReadBytes < 0 || j.WriteBytes < 0:
		return fmt.Errorf("trace: job %s has negative I/O", j.ID)
	case j.CacheHitFrac < 0 || j.CacheHitFrac > 1:
		return fmt.Errorf("trace: job %s has cache hit fraction %g outside [0,1]", j.ID, j.CacheHitFrac)
	case math.IsNaN(j.ArrivalSec) || math.IsInf(j.ArrivalSec, 0):
		return fmt.Errorf("trace: job %s has invalid arrival %g", j.ID, j.ArrivalSec)
	}
	return nil
}

// Trace is a set of jobs sorted by arrival time.
type Trace struct {
	Cluster string `json:"cluster"`
	Jobs    []*Job `json:"jobs"`
}

// Sort orders jobs by arrival time (stable; ties broken by ID for
// determinism).
func (t *Trace) Sort() {
	sort.SliceStable(t.Jobs, func(a, b int) bool {
		ja, jb := t.Jobs[a], t.Jobs[b]
		if ja.ArrivalSec != jb.ArrivalSec {
			return ja.ArrivalSec < jb.ArrivalSec
		}
		return ja.ID < jb.ID
	})
}

// Validate checks every job and that the trace is sorted.
func (t *Trace) Validate() error {
	last := math.Inf(-1)
	for _, j := range t.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if j.ArrivalSec < last {
			return fmt.Errorf("trace: jobs not sorted by arrival at %s", j.ID)
		}
		last = j.ArrivalSec
	}
	return nil
}

// Duration returns the time span covered by the trace (end of last job).
func (t *Trace) Duration() float64 {
	var end float64
	for _, j := range t.Jobs {
		if e := j.EndSec(); e > end {
			end = e
		}
	}
	return end
}

// PeakSSDUsage returns the maximum simultaneous footprint of all jobs —
// the SSD space an infinite-quota placement would need. Experiments that
// vary SSD capacity express quotas as a fraction of this value, exactly
// as the paper does ("portion of the peak SSD space usage").
func (t *Trace) PeakSSDUsage() float64 {
	type event struct {
		at    float64
		delta float64
	}
	events := make([]event, 0, 2*len(t.Jobs))
	for _, j := range t.Jobs {
		events = append(events, event{j.ArrivalSec, j.SizeBytes})
		events = append(events, event{j.EndSec(), -j.SizeBytes})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		// Process releases before acquisitions at identical times.
		return events[a].delta < events[b].delta
	})
	var cur, peak float64
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// FilterTime returns the jobs arriving in [from, to).
func (t *Trace) FilterTime(from, to float64) *Trace {
	out := &Trace{Cluster: t.Cluster}
	for _, j := range t.Jobs {
		if j.ArrivalSec >= from && j.ArrivalSec < to {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// Filter returns the jobs for which keep returns true.
func (t *Trace) Filter(keep func(*Job) bool) *Trace {
	out := &Trace{Cluster: t.Cluster}
	for _, j := range t.Jobs {
		if keep(j) {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// Shift moves every job's arrival by offset seconds (used to splice
// trace segments into drift scenarios).
func (t *Trace) Shift(offset float64) {
	for _, j := range t.Jobs {
		j.ArrivalSec += offset
	}
}

// SplitAt splits the trace into jobs arriving before the cut and at/after
// the cut — used to build the paper's contiguous train/test week pair.
func (t *Trace) SplitAt(cut float64) (train, test *Trace) {
	train = &Trace{Cluster: t.Cluster}
	test = &Trace{Cluster: t.Cluster}
	for _, j := range t.Jobs {
		if j.ArrivalSec < cut {
			train.Jobs = append(train.Jobs, j)
		} else {
			test.Jobs = append(test.Jobs, j)
		}
	}
	return train, test
}

// Users returns the distinct users in the trace, sorted.
func (t *Trace) Users() []string {
	set := map[string]bool{}
	for _, j := range t.Jobs {
		set[j.User] = true
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Pipelines returns the distinct pipelines in the trace, sorted.
func (t *Trace) Pipelines() []string {
	set := map[string]bool{}
	for _, j := range t.Jobs {
		set[j.Pipeline] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
