package trace

import (
	"bytes"
	"math"
	"testing"
)

func testJob(id string, arrival, lifetime, size float64) *Job {
	return &Job{
		ID:               id,
		Cluster:          "C0",
		User:             "u",
		Pipeline:         "p",
		Step:             "s",
		ArrivalSec:       arrival,
		LifetimeSec:      lifetime,
		SizeBytes:        size,
		ReadBytes:        size * 2,
		WriteBytes:       size,
		AvgReadSizeBytes: 1 << 20,
		CacheHitFrac:     0.3,
	}
}

func TestJobDerived(t *testing.T) {
	j := testJob("a", 3600, 100, 1000)
	if got := j.EndSec(); got != 3700 {
		t.Errorf("EndSec = %g, want 3700", got)
	}
	if got := j.TotalBytes(); got != 3000 {
		t.Errorf("TotalBytes = %g, want 3000", got)
	}
	if got := j.IODensity(); got != 3 {
		t.Errorf("IODensity = %g, want 3", got)
	}
	if got := j.HourOfDay(); got != 1 {
		t.Errorf("HourOfDay = %d, want 1", got)
	}
	if got := j.SecondOfDay(); got != 3600 {
		t.Errorf("SecondOfDay = %g, want 3600", got)
	}
	if got := j.TemplateKey(); got != "p/s" {
		t.Errorf("TemplateKey = %q", got)
	}
}

func TestJobWeekday(t *testing.T) {
	// Epoch is a Monday.
	j := testJob("a", 0, 1, 1)
	if got := j.Weekday(); got != 1 {
		t.Errorf("Weekday at epoch = %d, want 1 (Monday)", got)
	}
	j.ArrivalSec = 6 * 86400
	if got := j.Weekday(); got != 0 {
		t.Errorf("Weekday +6d = %d, want 0 (Sunday)", got)
	}
}

func TestJobValidate(t *testing.T) {
	good := testJob("a", 0, 10, 100)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Job)
	}{
		{"empty id", func(j *Job) { j.ID = "" }},
		{"zero lifetime", func(j *Job) { j.LifetimeSec = 0 }},
		{"zero size", func(j *Job) { j.SizeBytes = 0 }},
		{"negative reads", func(j *Job) { j.ReadBytes = -1 }},
		{"bad cache frac", func(j *Job) { j.CacheHitFrac = 1.5 }},
		{"nan arrival", func(j *Job) { j.ArrivalSec = math.NaN() }},
	}
	for _, c := range cases {
		j := testJob("a", 0, 10, 100)
		c.mutate(j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestTraceSortAndValidate(t *testing.T) {
	tr := &Trace{Cluster: "C0", Jobs: []*Job{
		testJob("b", 50, 10, 100),
		testJob("a", 10, 10, 100),
		testJob("c", 10, 10, 100),
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("unsorted trace should fail validation")
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		t.Fatalf("sorted trace failed validation: %v", err)
	}
	if tr.Jobs[0].ID != "a" || tr.Jobs[1].ID != "c" || tr.Jobs[2].ID != "b" {
		t.Errorf("sort order wrong: %s %s %s", tr.Jobs[0].ID, tr.Jobs[1].ID, tr.Jobs[2].ID)
	}
}

func TestPeakSSDUsage(t *testing.T) {
	tr := &Trace{Jobs: []*Job{
		testJob("a", 0, 100, 10),
		testJob("b", 50, 100, 20),
		testJob("c", 120, 10, 5),
	}}
	// a+b overlap during [50,100): 30. c alone: 5 (b ends at 150 > 120 so
	// b+c overlap: 25). Peak = 30.
	if got := tr.PeakSSDUsage(); got != 30 {
		t.Errorf("PeakSSDUsage = %g, want 30", got)
	}
}

func TestPeakSSDUsageTouchingIntervals(t *testing.T) {
	// Job b starts exactly when job a ends: no overlap should be counted.
	tr := &Trace{Jobs: []*Job{
		testJob("a", 0, 100, 10),
		testJob("b", 100, 100, 10),
	}}
	if got := tr.PeakSSDUsage(); got != 10 {
		t.Errorf("PeakSSDUsage = %g, want 10 (release before acquire)", got)
	}
}

func TestSplitAndFilter(t *testing.T) {
	tr := &Trace{Jobs: []*Job{
		testJob("a", 0, 10, 100),
		testJob("b", 100, 10, 100),
		testJob("c", 200, 10, 100),
	}}
	train, test := tr.SplitAt(150)
	if len(train.Jobs) != 2 || len(test.Jobs) != 1 {
		t.Fatalf("split sizes %d/%d, want 2/1", len(train.Jobs), len(test.Jobs))
	}
	mid := tr.FilterTime(50, 150)
	if len(mid.Jobs) != 1 || mid.Jobs[0].ID != "b" {
		t.Fatalf("FilterTime returned wrong jobs")
	}
	only := tr.Filter(func(j *Job) bool { return j.ID == "c" })
	if len(only.Jobs) != 1 || only.Jobs[0].ID != "c" {
		t.Fatalf("Filter returned wrong jobs")
	}
}

func TestUsersPipelines(t *testing.T) {
	tr := &Trace{Jobs: []*Job{
		{ID: "1", User: "u2", Pipeline: "p1", LifetimeSec: 1, SizeBytes: 1},
		{ID: "2", User: "u1", Pipeline: "p2", LifetimeSec: 1, SizeBytes: 1},
		{ID: "3", User: "u1", Pipeline: "p1", LifetimeSec: 1, SizeBytes: 1},
	}}
	users := tr.Users()
	if len(users) != 2 || users[0] != "u1" || users[1] != "u2" {
		t.Errorf("Users = %v", users)
	}
	pipes := tr.Pipelines()
	if len(pipes) != 2 || pipes[0] != "p1" || pipes[1] != "p2" {
		t.Errorf("Pipelines = %v", pipes)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	g := NewGenerator(GeneratorConfig{
		Cluster: "C9", Seed: 42, NumUsers: 3, MinPipes: 1, MaxPipes: 2,
		MinSteps: 1, MaxSteps: 2, DurationSec: 24 * 3600,
	})
	tr := g.Generate()
	if len(tr.Jobs) == 0 {
		t.Fatal("generator produced no jobs")
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if got.Cluster != tr.Cluster {
		t.Errorf("cluster %q, want %q", got.Cluster, tr.Cluster)
	}
	if len(got.Jobs) != len(tr.Jobs) {
		t.Fatalf("job count %d, want %d", len(got.Jobs), len(tr.Jobs))
	}
	for i := range got.Jobs {
		a, b := *got.Jobs[i], *tr.Jobs[i]
		if a != b {
			t.Fatalf("job %d differs after round trip:\n got %+v\nwant %+v", i, a, b)
		}
	}
}

func TestReadJSONLTruncated(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(`{"cluster":"c","num_jobs":3}` + "\n")); err == nil {
		t.Error("header count mismatch should error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.jsonl"
	tr := &Trace{Cluster: "CX", Jobs: []*Job{testJob("a", 0, 10, 100)}}
	if err := SaveFile(path, tr); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if len(got.Jobs) != 1 || got.Jobs[0].ID != "a" {
		t.Errorf("LoadFile returned wrong trace")
	}
	if _, err := LoadFile(dir + "/missing.jsonl"); err == nil {
		t.Error("loading missing file should error")
	}
}
