// Package policy implements every placement method the paper compares
// (Section 5.1 "Methods Compared"):
//
//   - FirstFit — static heuristic, admits any job that fits (§3.2)
//   - Heuristic — CacheSack-style adaptive per-category admission (§3.3)
//   - MLBaseline — lifetime-prediction µ+σ vs TTL with eviction (§3.4)
//   - AdaptiveHash — Algorithm 1 with hashed (non-ML) categories
//   - AdaptiveRanking — Algorithm 1 with the BYOM category model (ours)
//   - Static — fixed decision maps (the oracle policies)
//   - AdaptiveTrue — Algorithm 1 with ground-truth categories (Fig. 11)
//
// All policies implement sim.Policy; the adaptive ones also implement
// sim.Observer (spillover feedback) and MLBaseline implements
// sim.Evictor.
package policy

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/features"
	"repro/internal/gbdt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Canonical policy names used across experiments and reports.
const (
	NameFirstFit        = "FirstFit"
	NameHeuristic       = "Heuristic"
	NameMLBaseline      = "MLBaseline"
	NameAdaptiveHash    = "AdaptiveHash"
	NameAdaptiveRanking = "AdaptiveRanking"
	NameAdaptiveTrue    = "AdaptiveTrue"
	NameOracleTCO       = "OracleTCO"
	NameOracleTCIO      = "OracleTCIO"
)

// FirstFit places jobs on SSD in start-time order whenever the job's
// peak space fits in the free capacity (§3.2). It optimizes TCIO under
// abundant SSD but ignores cost, hurting TCO at tight quotas.
type FirstFit struct{}

// Name implements sim.Policy.
func (FirstFit) Name() string { return NameFirstFit }

// Place implements sim.Policy.
func (FirstFit) Place(j *trace.Job, ctx sim.PlaceContext) bool {
	return j.SizeBytes <= ctx.SSDFree
}

// Static replays a fixed decision map — used to wrap oracle solutions.
type Static struct {
	name  string
	OnSSD map[string]bool
}

// NewStatic builds a fixed-decision policy.
func NewStatic(name string, onSSD map[string]bool) *Static {
	return &Static{name: name, OnSSD: onSSD}
}

// Name implements sim.Policy.
func (s *Static) Name() string { return s.name }

// Place implements sim.Policy.
func (s *Static) Place(j *trace.Job, _ sim.PlaceContext) bool { return s.OnSSD[j.ID] }

// adaptiveBase shares the Algorithm 1 integration between the hash,
// ranking and true-category policies: Place asks the controller, and
// Observe feeds spillover outcomes back.
type adaptiveBase struct {
	adaptive *core.Adaptive
	cm       *cost.Model
}

func (b *adaptiveBase) observe(j *trace.Job, o sim.Outcome) {
	b.adaptive.Observe(sim.SpilloverFeedback(j, o, b.cm))
}

// ACTTrace exposes the controller time series (Fig. 16).
func (b *adaptiveBase) ACTTrace() []core.ACTPoint { return b.adaptive.Trace() }

// AdaptiveRanking is the paper's method: the application-layer category
// model produces an importance hint; Algorithm 1 at the storage layer
// admits categories above the adaptive threshold.
type AdaptiveRanking struct {
	adaptiveBase
	model *core.CategoryModel
	buf   []float64
}

// NewAdaptiveRanking wires a trained category model to a fresh
// Algorithm 1 controller.
func NewAdaptiveRanking(model *core.CategoryModel, cm *cost.Model, cfg core.AdaptiveConfig) (*AdaptiveRanking, error) {
	if cfg.NumCategories != model.NumCategories() {
		return nil, fmt.Errorf("policy: adaptive config has %d categories, model %d",
			cfg.NumCategories, model.NumCategories())
	}
	a, err := core.NewAdaptive(cfg)
	if err != nil {
		return nil, err
	}
	return &AdaptiveRanking{adaptiveBase: adaptiveBase{adaptive: a, cm: cm}, model: model}, nil
}

// Name implements sim.Policy.
func (p *AdaptiveRanking) Name() string { return NameAdaptiveRanking }

// Place implements sim.Policy.
func (p *AdaptiveRanking) Place(j *trace.Job, ctx sim.PlaceContext) bool {
	var cat int
	cat, p.buf = p.model.PredictInto(j, p.buf)
	return p.adaptive.Admit(cat, ctx.Now)
}

// Observe implements sim.Observer.
func (p *AdaptiveRanking) Observe(j *trace.Job, o sim.Outcome) { p.observe(j, o) }

// AdaptiveHash is the non-ML ablation: Algorithm 1 with categories
// assigned by hashing the job's recurring identity. The controller can
// still regulate admitted volume, but the ranking carries no importance
// signal — the gap to AdaptiveRanking isolates the model's value.
type AdaptiveHash struct {
	adaptiveBase
	n int
}

// NewAdaptiveHash builds the hash-category policy.
func NewAdaptiveHash(cm *cost.Model, cfg core.AdaptiveConfig) (*AdaptiveHash, error) {
	a, err := core.NewAdaptive(cfg)
	if err != nil {
		return nil, err
	}
	return &AdaptiveHash{adaptiveBase: adaptiveBase{adaptive: a, cm: cm}, n: cfg.NumCategories}, nil
}

// Name implements sim.Policy.
func (p *AdaptiveHash) Name() string { return NameAdaptiveHash }

// Place implements sim.Policy.
func (p *AdaptiveHash) Place(j *trace.Job, ctx sim.PlaceContext) bool {
	return p.adaptive.Admit(p.hashCategory(j), ctx.Now)
}

func (p *AdaptiveHash) hashCategory(j *trace.Job) int {
	h := fnv.New32a()
	h.Write([]byte(j.TemplateKey()))
	return 1 + int(h.Sum32()%uint32(p.n-1))
}

// Observe implements sim.Observer.
func (p *AdaptiveHash) Observe(j *trace.Job, o sim.Outcome) { p.observe(j, o) }

// AdaptiveFunc runs Algorithm 1 over categories produced by an
// arbitrary predictor function — used for composite deployments where
// hints come from many per-workload models (the BYOM fleet case).
type AdaptiveFunc struct {
	adaptiveBase
	name    string
	predict func(*trace.Job) int
}

// NewAdaptiveFunc builds a function-backed Algorithm 1 policy.
func NewAdaptiveFunc(name string, predict func(*trace.Job) int, cm *cost.Model, cfg core.AdaptiveConfig) (*AdaptiveFunc, error) {
	if predict == nil {
		return nil, fmt.Errorf("policy: nil predictor")
	}
	a, err := core.NewAdaptive(cfg)
	if err != nil {
		return nil, err
	}
	return &AdaptiveFunc{adaptiveBase: adaptiveBase{adaptive: a, cm: cm}, name: name, predict: predict}, nil
}

// Name implements sim.Policy.
func (p *AdaptiveFunc) Name() string { return p.name }

// Place implements sim.Policy.
func (p *AdaptiveFunc) Place(j *trace.Job, ctx sim.PlaceContext) bool {
	return p.adaptive.Admit(p.predict(j), ctx.Now)
}

// Observe implements sim.Observer.
func (p *AdaptiveFunc) Observe(j *trace.Job, o sim.Outcome) { p.observe(j, o) }

// AdaptiveTrue replaces the model prediction with the ground-truth
// category (100% accuracy), isolating how much better a perfect model
// would do (Fig. 11).
type AdaptiveTrue struct {
	adaptiveBase
	labeler *core.Labeler
}

// NewAdaptiveTrue builds the perfect-prediction policy.
func NewAdaptiveTrue(labeler *core.Labeler, cm *cost.Model, cfg core.AdaptiveConfig) (*AdaptiveTrue, error) {
	if cfg.NumCategories != labeler.NumCategories {
		return nil, fmt.Errorf("policy: adaptive config has %d categories, labeler %d",
			cfg.NumCategories, labeler.NumCategories)
	}
	a, err := core.NewAdaptive(cfg)
	if err != nil {
		return nil, err
	}
	return &AdaptiveTrue{adaptiveBase: adaptiveBase{adaptive: a, cm: cm}, labeler: labeler}, nil
}

// Name implements sim.Policy.
func (p *AdaptiveTrue) Name() string { return NameAdaptiveTrue }

// Place implements sim.Policy.
func (p *AdaptiveTrue) Place(j *trace.Job, ctx sim.PlaceContext) bool {
	return p.adaptive.Admit(p.labeler.Label(j, p.cm), ctx.Now)
}

// Observe implements sim.Observer.
func (p *AdaptiveTrue) Observe(j *trace.Job, o sim.Outcome) { p.observe(j, o) }

// HeuristicConfig tunes the CacheSack-style baseline.
type HeuristicConfig struct {
	// UpdateIntervalSec is how often the admission set is recomputed.
	UpdateIntervalSec float64
	// WindowSec is the sliding statistics window.
	WindowSec float64
}

// DefaultHeuristicConfig returns the baseline's defaults.
func DefaultHeuristicConfig() HeuristicConfig {
	return HeuristicConfig{UpdateIntervalSec: 1800, WindowSec: 24 * 3600}
}

// catStat accumulates per-category observations within the window.
type catStat struct {
	arrivals  []float64
	savings   []float64
	byteSecs  []float64
	sumSave   float64
	sumByteSc float64
}

func (c *catStat) prune(cutoff float64) {
	keep := 0
	for keep < len(c.arrivals) && c.arrivals[keep] <= cutoff {
		c.sumSave -= c.savings[keep]
		c.sumByteSc -= c.byteSecs[keep]
		keep++
	}
	if keep > 0 {
		c.arrivals = c.arrivals[keep:]
		c.savings = c.savings[keep:]
		c.byteSecs = c.byteSecs[keep:]
	}
}

func (c *catStat) add(arrival, save, byteSec float64) {
	c.arrivals = append(c.arrivals, arrival)
	c.savings = append(c.savings, save)
	c.byteSecs = append(c.byteSecs, byteSec)
	c.sumSave += save
	c.sumByteSc += byteSec
}

// Heuristic emulates the CacheSack-style state-of-the-art baseline
// (§3.3, after Yang et al. 2022): per-category (job identity) stats of
// TCO savings and space usage; categories are ranked by savings and
// admitted until their cumulative historical space usage reaches the
// SSD capacity.
type Heuristic struct {
	cm        *cost.Model
	cfg       HeuristicConfig
	stats     map[string]*catStat
	admission map[string]bool
	lastCalc  float64
	started   bool
}

// NewHeuristic builds the baseline. Call Prime with historical jobs
// (e.g. the training week) so it starts with the same knowledge the ML
// methods train on.
func NewHeuristic(cm *cost.Model, cfg HeuristicConfig) *Heuristic {
	return &Heuristic{
		cm:        cm,
		cfg:       cfg,
		stats:     map[string]*catStat{},
		admission: map[string]bool{},
	}
}

// Prime feeds historical jobs (e.g. the training week, which precedes
// the evaluation week on the same clock) into the category statistics.
// They age out of the sliding window as real observations accumulate.
func (h *Heuristic) Prime(jobs []*trace.Job) {
	for _, j := range jobs {
		h.record(j, j.ArrivalSec)
	}
}

func (h *Heuristic) record(j *trace.Job, at float64) {
	key := j.TemplateKey()
	st := h.stats[key]
	if st == nil {
		st = &catStat{}
		h.stats[key] = st
	}
	st.add(at, h.cm.Savings(j), j.SizeBytes*j.LifetimeSec)
}

// Name implements sim.Policy.
func (h *Heuristic) Name() string { return NameHeuristic }

// Place implements sim.Policy.
func (h *Heuristic) Place(j *trace.Job, ctx sim.PlaceContext) bool {
	if !h.started || ctx.Now >= h.lastCalc+h.cfg.UpdateIntervalSec {
		h.recompute(ctx)
	}
	return h.admission[j.TemplateKey()]
}

// Observe implements sim.Observer: completed jobs feed the statistics
// (the real system measures these post-execution).
func (h *Heuristic) Observe(j *trace.Job, _ sim.Outcome) {
	h.record(j, j.ArrivalSec)
}

// recompute rebuilds the admission set: categories by savings
// descending, admitted until predicted space usage exhausts the quota.
func (h *Heuristic) recompute(ctx sim.PlaceContext) {
	h.started = true
	h.lastCalc = ctx.Now
	cutoff := ctx.Now - h.cfg.WindowSec
	type ranked struct {
		key   string
		save  float64
		space float64
	}
	var cats []ranked
	for key, st := range h.stats {
		st.prune(cutoff)
		if len(st.arrivals) == 0 {
			delete(h.stats, key)
			continue
		}
		// Average concurrent space usage over the window.
		space := st.sumByteSc / h.cfg.WindowSec
		cats = append(cats, ranked{key: key, save: st.sumSave, space: space})
	}
	sort.Slice(cats, func(a, b int) bool {
		if cats[a].save != cats[b].save {
			return cats[a].save > cats[b].save
		}
		return cats[a].key < cats[b].key
	})
	// Paper: "add categories into an admission set until the selected
	// category's historical space usage reaches the SSD capacity" — the
	// crossing category is still admitted.
	h.admission = make(map[string]bool, len(cats))
	var used float64
	for _, c := range cats {
		if c.save <= 0 {
			break
		}
		h.admission[c.key] = true
		used += c.space
		if used >= ctx.SSDQuota {
			break
		}
	}
}

// MLBaseline follows Zhou & Maas (2021)'s SSD/HDD tiering case study:
// predict the mean µ and standard deviation σ of file lifetime, admit
// to SSD when µ+σ < TTL, and evict anything resident longer than µ+σ
// to mitigate mispredictions (§3.4).
type MLBaseline struct {
	enc      *features.Encoder
	muModel  *gbdt.Model
	varModel *gbdt.Model
	TTLSec   float64
	buf      []float64
}

// TrainMLBaseline fits the lifetime distribution models on historical
// jobs: a regressor for mean log-lifetime and one for the squared
// residual (variance).
func TrainMLBaseline(train []*trace.Job, ttlSec float64, cfg gbdt.Config) (*MLBaseline, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("policy: no training jobs for ML baseline")
	}
	if ttlSec <= 0 {
		return nil, fmt.Errorf("policy: TTL must be positive, got %g", ttlSec)
	}
	enc := features.BuildEncoder(train, 0)
	ds := enc.Dataset(train)
	logLife := make([]float64, len(train))
	for i, j := range train {
		logLife[i] = math.Log(j.LifetimeSec)
	}
	muModel, err := gbdt.TrainRegressor(ds, logLife, cfg)
	if err != nil {
		return nil, fmt.Errorf("policy: ML baseline mu model: %w", err)
	}
	resid := make([]float64, len(train))
	row := make([]float64, enc.NumFeatures())
	for i := range train {
		row = ds.Row(i, row)
		r := logLife[i] - muModel.PredictValue(row)
		resid[i] = r * r
	}
	varModel, err := gbdt.TrainRegressor(ds, resid, cfg)
	if err != nil {
		return nil, fmt.Errorf("policy: ML baseline variance model: %w", err)
	}
	return &MLBaseline{enc: enc, muModel: muModel, varModel: varModel, TTLSec: ttlSec}, nil
}

// Name implements sim.Policy.
func (p *MLBaseline) Name() string { return NameMLBaseline }

// EstimateLifetime returns exp(µ+σ) in seconds: the admission statistic.
func (p *MLBaseline) EstimateLifetime(j *trace.Job) float64 {
	p.buf = p.enc.Encode(j, p.buf)
	mu := p.muModel.PredictValue(p.buf)
	v := p.varModel.PredictValue(p.buf)
	if v < 0 {
		v = 0
	}
	return math.Exp(mu + math.Sqrt(v))
}

// Place implements sim.Policy.
func (p *MLBaseline) Place(j *trace.Job, _ sim.PlaceContext) bool {
	return p.EstimateLifetime(j) < p.TTLSec
}

// EvictAfter implements sim.Evictor: evict after µ+σ.
func (p *MLBaseline) EvictAfter(j *trace.Job) float64 {
	return p.EstimateLifetime(j)
}

// Interface conformance checks.
var (
	_ sim.Policy   = FirstFit{}
	_ sim.Policy   = (*Static)(nil)
	_ sim.Policy   = (*AdaptiveRanking)(nil)
	_ sim.Observer = (*AdaptiveRanking)(nil)
	_ sim.Policy   = (*AdaptiveHash)(nil)
	_ sim.Observer = (*AdaptiveHash)(nil)
	_ sim.Policy   = (*AdaptiveTrue)(nil)
	_ sim.Observer = (*AdaptiveTrue)(nil)
	_ sim.Policy   = (*AdaptiveFunc)(nil)
	_ sim.Observer = (*AdaptiveFunc)(nil)
	_ sim.Policy   = (*Heuristic)(nil)
	_ sim.Observer = (*Heuristic)(nil)
	_ sim.Policy   = (*MLBaseline)(nil)
	_ sim.Evictor  = (*MLBaseline)(nil)
)
