package policy

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gbdt"
	"repro/internal/sim"
	"repro/internal/trace"
)

func job(id string, arrival, lifetime, size float64, hot bool) *trace.Job {
	j := &trace.Job{
		ID: id, ArrivalSec: arrival, LifetimeSec: lifetime, SizeBytes: size,
		Pipeline: "p-" + id, Step: "s",
		AvgReadSizeBytes: 64 * 1024, CacheHitFrac: 0.2,
	}
	if hot {
		j.ReadBytes = size * 40
		j.WriteBytes = size * 1.2
	} else {
		j.ReadBytes = size * 0.05
		j.WriteBytes = size * 1.5
		j.AvgReadSizeBytes = 8 << 20
		j.CacheHitFrac = 0.6
	}
	return j
}

func TestFirstFitPlacesWhatFits(t *testing.T) {
	p := FirstFit{}
	j := job("a", 0, 100, 500, true)
	if !p.Place(j, sim.PlaceContext{SSDFree: 500}) {
		t.Error("exact fit rejected")
	}
	if p.Place(j, sim.PlaceContext{SSDFree: 499}) {
		t.Error("oversized job accepted")
	}
	if p.Name() != NameFirstFit {
		t.Errorf("name = %s", p.Name())
	}
}

func TestStaticPolicy(t *testing.T) {
	p := NewStatic("oracle", map[string]bool{"a": true})
	if !p.Place(job("a", 0, 1, 1, true), sim.PlaceContext{}) {
		t.Error("mapped job rejected")
	}
	if p.Place(job("b", 0, 1, 1, true), sim.PlaceContext{}) {
		t.Error("unmapped job accepted")
	}
	if p.Name() != "oracle" {
		t.Errorf("name = %s", p.Name())
	}
}

func TestAdaptiveHashCategoriesStable(t *testing.T) {
	cm := cost.Default()
	p, err := NewAdaptiveHash(cm, core.DefaultAdaptiveConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	j := job("a", 0, 100, 500, true)
	c1 := p.hashCategory(j)
	c2 := p.hashCategory(j)
	if c1 != c2 {
		t.Error("hash category not stable")
	}
	if c1 < 1 || c1 > 14 {
		t.Errorf("hash category %d outside [1,14]", c1)
	}
	// Different templates should spread across categories.
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		seen[p.hashCategory(job(string(rune('a'+i)), 0, 1, 1, true))] = true
	}
	if len(seen) < 5 {
		t.Errorf("only %d distinct hash categories over 50 templates", len(seen))
	}
}

func TestHeuristicAdmitsSaversFirst(t *testing.T) {
	cm := cost.Default()
	h := NewHeuristic(cm, DefaultHeuristicConfig())
	// Prime with history: hot template saves, cold template loses.
	var hist []*trace.Job
	for i := 0; i < 20; i++ {
		hot := job("h", float64(i)*100, 100, 1000, true)
		hot.Pipeline = "hotpipe"
		cold := job("c", float64(i)*100, 100, 1000, false)
		cold.Pipeline = "coldpipe"
		hist = append(hist, hot, cold)
	}
	h.Prime(hist)
	ctx := sim.PlaceContext{Now: 2100, SSDQuota: 1e12, SSDFree: 1e12}
	hotJob := job("x", 2100, 100, 1000, true)
	hotJob.Pipeline = "hotpipe"
	coldJob := job("y", 2100, 100, 1000, false)
	coldJob.Pipeline = "coldpipe"
	if !h.Place(hotJob, ctx) {
		t.Error("known-saving template rejected")
	}
	if h.Place(coldJob, ctx) {
		t.Error("known-losing template admitted")
	}
	// Unknown template: no history, not admitted.
	unknown := job("z", 2100, 100, 1000, true)
	unknown.Pipeline = "neverseen"
	if h.Place(unknown, ctx) {
		t.Error("unknown template admitted")
	}
}

func TestHeuristicRespectsQuotaBudget(t *testing.T) {
	cm := cost.Default()
	h := NewHeuristic(cm, DefaultHeuristicConfig())
	// Two saving templates; tiny quota should admit only the better one
	// (ranked by total savings).
	var hist []*trace.Job
	for i := 0; i < 20; i++ {
		big := job("b", float64(i)*1000, 900, 1e9, true) // hot and huge: top saver
		big.Pipeline = "bigpipe"
		small := job("s", float64(i)*1000, 900, 1e6, true)
		small.Pipeline = "smallpipe"
		hist = append(hist, big, small)
	}
	h.Prime(hist)
	// Quota far below bigpipe's average occupancy: bigpipe is admitted
	// first (crossing category), exhausting the budget.
	ctx := sim.PlaceContext{Now: 21000, SSDQuota: 1e6, SSDFree: 1e6}
	bigJob := job("B", 21000, 900, 1e9, true)
	bigJob.Pipeline = "bigpipe"
	smallJob := job("S", 21000, 900, 1e6, true)
	smallJob.Pipeline = "smallpipe"
	if !h.Place(bigJob, ctx) {
		t.Error("top-saving template not admitted")
	}
	if h.Place(smallJob, ctx) {
		t.Error("budget-exceeding second template admitted")
	}
}

func TestMLBaselineLifetimeGate(t *testing.T) {
	cm := cost.Default()
	_ = cm
	// Training set with two recurring templates: short-lived and
	// long-lived, distinguishable by metadata.
	var train []*trace.Job
	for i := 0; i < 300; i++ {
		s := job("s", float64(i)*50, 60, 1000, true)
		s.Meta.PipelineName = "shortpipe"
		l := job("l", float64(i)*50, 86400, 1000, false)
		l.Meta.PipelineName = "longpipe"
		train = append(train, s, l)
	}
	cfg := gbdt.DefaultConfig()
	cfg.NumRounds = 15
	ml, err := TrainMLBaseline(train, 3600, cfg)
	if err != nil {
		t.Fatal(err)
	}
	short := job("x", 20000, 60, 1000, true)
	short.Meta.PipelineName = "shortpipe"
	long := job("y", 20000, 86400, 1000, false)
	long.Meta.PipelineName = "longpipe"
	if !ml.Place(short, sim.PlaceContext{}) {
		t.Errorf("short-lived job rejected (estimate %.0fs vs TTL %.0fs)",
			ml.EstimateLifetime(short), ml.TTLSec)
	}
	if ml.Place(long, sim.PlaceContext{}) {
		t.Errorf("long-lived job admitted (estimate %.0fs vs TTL %.0fs)",
			ml.EstimateLifetime(long), ml.TTLSec)
	}
	// Eviction deadline equals the lifetime estimate.
	if ml.EvictAfter(short) != ml.EstimateLifetime(short) {
		t.Error("EvictAfter != lifetime estimate")
	}
}

func TestTrainMLBaselineErrors(t *testing.T) {
	cfg := gbdt.DefaultConfig()
	if _, err := TrainMLBaseline(nil, 3600, cfg); err == nil {
		t.Error("empty training set accepted")
	}
	train := []*trace.Job{job("a", 0, 100, 100, true)}
	if _, err := TrainMLBaseline(train, 0, cfg); err == nil {
		t.Error("zero TTL accepted")
	}
	bad := cfg
	bad.NumRounds = 0
	if _, err := TrainMLBaseline(train, 3600, bad); err == nil {
		t.Error("bad GBDT config accepted")
	}
}

func TestAdaptiveRankingConfigMismatch(t *testing.T) {
	cm := cost.Default()
	cfgT := trace.DefaultGeneratorConfig("C0", 5)
	cfgT.DurationSec = 12 * 3600
	jobs := trace.NewGenerator(cfgT).Generate().Jobs
	opts := core.DefaultTrainOptions()
	opts.NumCategories = 5
	opts.GBDT.NumRounds = 2
	model, err := core.TrainCategoryModel(jobs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAdaptiveRanking(model, cm, core.DefaultAdaptiveConfig(15)); err == nil {
		t.Error("category-count mismatch accepted")
	}
	if _, err := NewAdaptiveRanking(model, cm, core.DefaultAdaptiveConfig(5)); err != nil {
		t.Errorf("matching config rejected: %v", err)
	}
	labeler := model.Labeler
	if _, err := NewAdaptiveTrue(labeler, cm, core.DefaultAdaptiveConfig(15)); err == nil {
		t.Error("labeler mismatch accepted")
	}
}

// TestEndToEndShape is the headline integration test: on a generated
// cluster with a tight SSD quota, AdaptiveRanking must beat FirstFit
// and AdaptiveHash on TCO savings (the paper's central claim), and all
// policies must respect the quota.
func TestEndToEndShape(t *testing.T) {
	cm := cost.Default()
	gcfg := trace.DefaultGeneratorConfig("C0", 2024)
	gcfg.DurationSec = 6 * 24 * 3600
	full := trace.NewGenerator(gcfg).Generate()
	train, test := full.SplitAt(3 * 24 * 3600)
	if len(train.Jobs) < 500 || len(test.Jobs) < 500 {
		t.Fatalf("trace too small: %d/%d", len(train.Jobs), len(test.Jobs))
	}

	opts := core.DefaultTrainOptions()
	opts.GBDT.NumRounds = 25
	model, err := core.TrainCategoryModel(train.Jobs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}

	quota := test.PeakSSDUsage() * 0.01
	acfg := core.DefaultAdaptiveConfig(opts.NumCategories)

	ranking, err := NewAdaptiveRanking(model, cm, acfg)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := NewAdaptiveHash(cm, acfg)
	if err != nil {
		t.Fatal(err)
	}
	heur := NewHeuristic(cm, DefaultHeuristicConfig())
	heur.Prime(train.Jobs)

	results, err := sim.RunAll(test, []sim.Policy{FirstFit{}, ranking, hash, heur}, cm,
		sim.Config{SSDQuota: quota})
	if err != nil {
		t.Fatal(err)
	}

	rk := results[NameAdaptiveRanking].TCOSavingsPercent()
	ff := results[NameFirstFit].TCOSavingsPercent()
	hs := results[NameAdaptiveHash].TCOSavingsPercent()
	he := results[NameHeuristic].TCOSavingsPercent()
	t.Logf("TCO savings %%: ranking=%.3f firstfit=%.3f hash=%.3f heuristic=%.3f", rk, ff, hs, he)

	if rk <= ff {
		t.Errorf("AdaptiveRanking (%.3f%%) must beat FirstFit (%.3f%%) at 1%% quota", rk, ff)
	}
	if rk <= hs {
		t.Errorf("AdaptiveRanking (%.3f%%) must beat AdaptiveHash (%.3f%%): the model matters", rk, hs)
	}
	if rk <= 0 {
		t.Error("AdaptiveRanking should achieve positive savings")
	}
}

func TestTrainImitationValidation(t *testing.T) {
	cm := cost.Default()
	cfg := gbdt.DefaultConfig()
	cfg.NumRounds = 3
	if _, err := TrainImitation(nil, 100, cm, cfg); err == nil {
		t.Error("empty training set accepted")
	}
	jobs := []*trace.Job{job("a", 0, 100, 1000, true)}
	if _, err := TrainImitation(jobs, -1, cm, cfg); err == nil {
		t.Error("negative quota accepted")
	}
	// Zero capacity: the oracle admits nothing, so there is nothing to
	// imitate.
	if _, err := TrainImitation(jobs, 0, cm, cfg); err == nil {
		t.Error("unimitatable (empty) oracle accepted")
	}
}

func TestImitationLearnsOracleDecisions(t *testing.T) {
	cm := cost.Default()
	// Recurring hot and cold templates; ample capacity so the oracle
	// admits exactly the positive-savings jobs.
	var train []*trace.Job
	for i := 0; i < 150; i++ {
		h := job(fmt.Sprintf("h%03d", i), float64(i)*200, 100, 1000, true)
		h.Pipeline = "hotpipe"
		h.Meta.PipelineName = "hotpipe"
		c := job(fmt.Sprintf("c%03d", i), float64(i)*200, 100, 1000, false)
		c.Pipeline = "coldpipe"
		c.Meta.PipelineName = "coldpipe"
		train = append(train, h, c)
	}
	cfg := gbdt.DefaultConfig()
	cfg.NumRounds = 10
	imit, err := TrainImitation(train, 1e9, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if imit.Name() != NameImitation {
		t.Errorf("name = %s", imit.Name())
	}
	hot := job("x", 40000, 100, 1000, true)
	hot.Pipeline = "hotpipe"
	hot.Meta.PipelineName = "hotpipe"
	cold := job("y", 40000, 100, 1000, false)
	cold.Pipeline = "coldpipe"
	cold.Meta.PipelineName = "coldpipe"
	if !imit.Place(hot, sim.PlaceContext{}) {
		t.Error("imitation rejected the hot template the oracle admits")
	}
	if imit.Place(cold, sim.PlaceContext{}) {
		t.Error("imitation admitted the cold template the oracle rejects")
	}
}
