package policy

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/features"
	"repro/internal/gbdt"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/trace"
)

// NameImitation is the imitation-learning policy's report name.
const NameImitation = "Imitation"

// Imitation is the end-to-end learning approach the paper argues
// against (Section 4, after Liu et al.): train a classifier to imitate
// the clairvoyant oracle's placement decisions directly. The oracle's
// decisions are conditioned on the SSD capacity it was solved under, so
// the model implicitly bakes in one environment; when the online quota
// differs from the training quota, its decisions are systematically
// wrong — the adaptability failure BYOM's cross-layer split avoids.
type Imitation struct {
	enc   *features.Encoder
	model *gbdt.Model
	// TrainQuota records the capacity the oracle labels were computed
	// under (for reporting).
	TrainQuota float64
	buf        []float64
}

// TrainImitation solves the oracle on the training jobs at the given
// capacity and fits a binary classifier to its decisions.
func TrainImitation(train []*trace.Job, trainQuota float64, cm *cost.Model, cfg gbdt.Config) (*Imitation, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("policy: no training jobs for imitation")
	}
	if trainQuota < 0 {
		return nil, fmt.Errorf("policy: negative training quota")
	}
	sol, err := oracle.Solve(train, trainQuota, cm, oracle.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("policy: imitation oracle: %w", err)
	}
	labels := make([]int, len(train))
	positives := 0
	for i, j := range train {
		if sol.OnSSD[j.ID] {
			labels[i] = 1
			positives++
		}
	}
	if positives == 0 {
		return nil, fmt.Errorf("policy: oracle admitted nothing at quota %g; cannot imitate", trainQuota)
	}
	enc := features.BuildEncoder(train, 0)
	ds := enc.Dataset(train)
	model, err := gbdt.TrainClassifier(ds, labels, 2, cfg)
	if err != nil {
		return nil, fmt.Errorf("policy: imitation classifier: %w", err)
	}
	return &Imitation{enc: enc, model: model, TrainQuota: trainQuota}, nil
}

// Name implements sim.Policy.
func (p *Imitation) Name() string { return NameImitation }

// Place implements sim.Policy: replay the imitated decision,
// irrespective of the actual free capacity — the model *is* the policy,
// which is precisely the problem.
func (p *Imitation) Place(j *trace.Job, _ sim.PlaceContext) bool {
	p.buf = p.enc.Encode(j, p.buf)
	return p.model.PredictClass(p.buf) == 1
}

// Interface conformance.
var _ sim.Policy = (*Imitation)(nil)
