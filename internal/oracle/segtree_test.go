package oracle

import (
	"math/rand"
	"testing"
)

func TestSegTreeBasic(t *testing.T) {
	st := newSegTree(8)
	if got := st.Max(0, 8); got != 0 {
		t.Fatalf("empty max = %g, want 0", got)
	}
	st.Add(2, 5, 3)
	if got := st.Max(0, 8); got != 3 {
		t.Errorf("max = %g, want 3", got)
	}
	if got := st.Max(0, 2); got != 0 {
		t.Errorf("max[0,2) = %g, want 0", got)
	}
	if got := st.Max(5, 8); got != 0 {
		t.Errorf("max[5,8) = %g, want 0", got)
	}
	st.Add(4, 8, 2)
	if got := st.Max(4, 5); got != 5 {
		t.Errorf("max[4,5) = %g, want 5", got)
	}
	if got := st.Max(2, 4); got != 3 {
		t.Errorf("max[2,4) = %g, want 3", got)
	}
}

func TestSegTreeClamping(t *testing.T) {
	st := newSegTree(4)
	st.Add(-5, 100, 1) // clamped to [0,4)
	if got := st.Max(-2, 50); got != 1 {
		t.Errorf("max = %g, want 1", got)
	}
	if got := st.Max(3, 3); got != 0 {
		t.Errorf("empty-range max = %g, want 0", got)
	}
	st2 := newSegTree(0) // degenerate size is clamped to 1
	st2.Add(0, 1, 5)
	if got := st2.Max(0, 1); got != 5 {
		t.Errorf("degenerate tree max = %g, want 5", got)
	}
}

func TestSegTreeAgainstBruteForce(t *testing.T) {
	const n = 37
	rng := rand.New(rand.NewSource(21))
	st := newSegTree(n)
	ref := make([]float64, n)
	for op := 0; op < 2000; op++ {
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		if rng.Float64() < 0.5 {
			delta := rng.NormFloat64()
			st.Add(lo, hi, delta)
			for i := lo; i < hi; i++ {
				ref[i] += delta
			}
		} else {
			want := ref[lo]
			for i := lo + 1; i < hi; i++ {
				if ref[i] > want {
					want = ref[i]
				}
			}
			got := st.Max(lo, hi)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("op %d: Max(%d,%d) = %g, want %g", op, lo, hi, got, want)
			}
		}
	}
}
