package oracle

// segTree is a lazy-propagation segment tree supporting range add and
// range max over a fixed number of slots. The greedy oracle uses it to
// maintain the SSD usage profile over time intervals: admitting a job is
// a range-add of its size, and feasibility is a range-max query.
type segTree struct {
	n    int
	maxv []float64
	lazy []float64
}

func newSegTree(n int) *segTree {
	if n < 1 {
		n = 1
	}
	return &segTree{n: n, maxv: make([]float64, 4*n), lazy: make([]float64, 4*n)}
}

// Add adds delta to every slot in [lo, hi).
func (s *segTree) Add(lo, hi int, delta float64) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return
	}
	s.add(1, 0, s.n, lo, hi, delta)
}

func (s *segTree) add(node, nodeLo, nodeHi, lo, hi int, delta float64) {
	if lo <= nodeLo && nodeHi <= hi {
		s.maxv[node] += delta
		s.lazy[node] += delta
		return
	}
	mid := (nodeLo + nodeHi) / 2
	left, right := 2*node, 2*node+1
	if lo < mid {
		s.add(left, nodeLo, mid, lo, hi, delta)
	}
	if hi > mid {
		s.add(right, mid, nodeHi, lo, hi, delta)
	}
	s.maxv[node] = s.lazy[node] + max64(s.maxv[left], s.maxv[right])
}

// Max returns the maximum slot value over [lo, hi); 0 for empty ranges.
func (s *segTree) Max(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return 0
	}
	return s.query(1, 0, s.n, lo, hi)
}

func (s *segTree) query(node, nodeLo, nodeHi, lo, hi int) float64 {
	if lo <= nodeLo && nodeHi <= hi {
		return s.maxv[node]
	}
	mid := (nodeLo + nodeHi) / 2
	res := -1e308
	if lo < mid {
		res = max64(res, s.query(2*node, nodeLo, mid, lo, hi))
	}
	if hi > mid {
		res = max64(res, s.query(2*node+1, mid, nodeHi, lo, hi))
	}
	return res + s.lazy[node]
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
