// Package oracle implements the paper's clairvoyant placement oracle
// (Section 3.1): an Integer Linear Program that maximizes savings from
// SSD placement subject to the SSD capacity constraint at every point in
// time. It provides an exact branch-and-bound solver (LP-relaxation
// bounds via internal/lp) for small instances and a scalable greedy
// density solver with an exchange pass for cluster-scale traces, the
// latter validated against the former in tests.
package oracle

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/lp"
	"repro/internal/trace"
)

// Objective selects what the oracle optimizes, mirroring the paper's
// "Oracle TCO" and "Oracle TCIO" variants.
type Objective int

const (
	// TCO maximizes total cost-of-ownership savings.
	TCO Objective = iota
	// TCIO maximizes I/O cost removed from HDDs.
	TCIO
)

func (o Objective) String() string {
	if o == TCIO {
		return "tcio"
	}
	return "tco"
}

// Config controls the solver.
type Config struct {
	Objective Objective
	// ExactLimit is the maximum number of candidate jobs for which the
	// exact branch-and-bound is attempted; larger instances use the
	// greedy solver.
	ExactLimit int
	// NodeBudget bounds branch-and-bound nodes; when exhausted the best
	// incumbent is returned with Exact=false.
	NodeBudget int
	// Fractional lets the greedy solver fill leftover capacity with
	// partial placements (x_i in [0,1]). The paper's simulator gives
	// partial-spillover credit, so the theoretical bound of Fig. 7 must
	// cover fractional placements too.
	Fractional bool
}

// DefaultConfig returns the solver defaults.
func DefaultConfig() Config {
	return Config{Objective: TCO, ExactLimit: 48, NodeBudget: 20000}
}

// Result holds oracle placement decisions.
type Result struct {
	// OnSSD maps job ID -> placement decision (full placements).
	OnSSD map[string]bool
	// Frac maps job ID -> placed fraction in [0,1]. Integral solves
	// only contain 0/1 entries; fractional greedy may assign partial
	// fractions.
	Frac map[string]float64
	// Value is the achieved objective (fraction-weighted sum of values
	// of admitted jobs).
	Value float64
	// UpperBound is a valid upper bound on the optimum: the LP
	// relaxation for exact solves, the unconstrained positive sum for
	// greedy solves.
	UpperBound float64
	// Exact reports whether the result is provably optimal.
	Exact bool
}

// jobValue returns the objective coefficient of a job.
func jobValue(j *trace.Job, cm *cost.Model, obj Objective) float64 {
	if obj == TCIO {
		return cm.TCIO(j)
	}
	return cm.Savings(j)
}

// Solve computes oracle placement decisions for the jobs under the given
// SSD capacity (bytes). It dispatches to the exact solver when the
// number of positive-value candidates is within cfg.ExactLimit.
func Solve(jobs []*trace.Job, capacity float64, cm *cost.Model, cfg Config) (*Result, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("oracle: negative capacity %g", capacity)
	}
	if cfg.ExactLimit <= 0 {
		cfg.ExactLimit = DefaultConfig().ExactLimit
	}
	if cfg.NodeBudget <= 0 {
		cfg.NodeBudget = DefaultConfig().NodeBudget
	}
	cands := candidates(jobs, capacity, cm, cfg.Objective)
	res := &Result{
		OnSSD: make(map[string]bool, len(jobs)),
		Frac:  make(map[string]float64, len(jobs)),
	}
	for _, j := range jobs {
		res.OnSSD[j.ID] = false
	}
	if len(cands) == 0 {
		res.Exact = true
		return res, nil
	}
	if len(cands) <= cfg.ExactLimit && !cfg.Fractional {
		return solveExact(cands, capacity, res, cfg.NodeBudget)
	}
	return solveGreedy(cands, capacity, res, cfg.Fractional), nil
}

// candidate pairs a job with its objective value.
type candidate struct {
	job   *trace.Job
	value float64
}

// candidates filters to jobs that could profitably fit: positive value
// and size within capacity. Jobs with non-positive value are never
// placed by an optimal solution of this maximization (their coefficient
// cannot help the objective and only consumes capacity).
func candidates(jobs []*trace.Job, capacity float64, cm *cost.Model, obj Objective) []candidate {
	out := make([]candidate, 0, len(jobs))
	for _, j := range jobs {
		v := jobValue(j, cm, obj)
		if v > 0 && j.SizeBytes <= capacity {
			out = append(out, candidate{job: j, value: v})
		}
	}
	return out
}

// timeIndex builds the sorted unique boundary times of the candidate
// jobs and a lookup from time to slot index. Slot k covers
// [times[k], times[k+1]).
type timeIndex struct {
	times []float64
	pos   map[float64]int
}

func buildTimeIndex(cands []candidate) *timeIndex {
	set := make(map[float64]bool, 2*len(cands))
	for _, c := range cands {
		set[c.job.ArrivalSec] = true
		set[c.job.EndSec()] = true
	}
	times := make([]float64, 0, len(set))
	for t := range set {
		times = append(times, t)
	}
	sort.Float64s(times)
	pos := make(map[float64]int, len(times))
	for i, t := range times {
		pos[t] = i
	}
	return &timeIndex{times: times, pos: pos}
}

func (ti *timeIndex) slotRange(j *trace.Job) (lo, hi int) {
	return ti.pos[j.ArrivalSec], ti.pos[j.EndSec()]
}

// solveGreedy runs two greedy passes — one ordered by value density
// (value per byte-second of SSD occupancy), one by absolute value —
// keeps the better, and finishes with a bounded 1-exchange improvement
// pass (swap one admitted job for a skipped higher-value one). Density
// order is near-optimal when jobs are small relative to capacity (the
// cluster-trace regime); value order covers the knapsack-y regime where
// a single large job beats several dense ones.
func solveGreedy(cands []candidate, capacity float64, res *Result, fractional bool) *Result {
	ti := buildTimeIndex(cands)

	density := func(c candidate) float64 {
		occ := c.job.SizeBytes * c.job.LifetimeSec
		if occ <= 0 {
			return math.Inf(1)
		}
		return c.value / occ
	}
	byDensity := func(a, b int) bool {
		da, db := density(cands[a]), density(cands[b])
		if da != db {
			return da > db
		}
		return cands[a].job.ID < cands[b].job.ID
	}
	byValue := func(a, b int) bool {
		if cands[a].value != cands[b].value {
			return cands[a].value > cands[b].value
		}
		return cands[a].job.ID < cands[b].job.ID
	}

	bestAdmitted := greedyPass(cands, capacity, ti, byDensity, byValue)
	alt := greedyPass(cands, capacity, ti, byValue, byDensity)
	if totalValue(cands, alt) > totalValue(cands, bestAdmitted) {
		bestAdmitted = alt
	}
	exchangePass(cands, capacity, ti, bestAdmitted)

	for i, c := range cands {
		if bestAdmitted[i] {
			res.OnSSD[c.job.ID] = true
			res.Frac[c.job.ID] = 1
			res.Value += c.value
		}
		res.UpperBound += c.value
	}
	if fractional {
		fractionalFill(cands, capacity, ti, bestAdmitted, res)
	}
	// Guard against summation-order float drift when everything fits.
	if res.Value > res.UpperBound {
		res.UpperBound = res.Value
	}
	res.Exact = false
	return res
}

// fractionalFill tops up leftover capacity with partial placements in
// value-density order: each remaining candidate takes the largest
// fraction that fits over its whole lifetime interval.
func fractionalFill(cands []candidate, capacity float64, ti *timeIndex, admitted []bool, res *Result) {
	st := newSegTree(len(ti.times) - 1)
	for i, c := range cands {
		if admitted[i] {
			lo, hi := ti.slotRange(c.job)
			st.Add(lo, hi, c.job.SizeBytes)
		}
	}
	order := make([]int, 0, len(cands))
	for i := range cands {
		if !admitted[i] {
			order = append(order, i)
		}
	}
	density := func(c candidate) float64 {
		occ := c.job.SizeBytes * c.job.LifetimeSec
		if occ <= 0 {
			return math.Inf(1)
		}
		return c.value / occ
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := density(cands[order[a]]), density(cands[order[b]])
		if da != db {
			return da > db
		}
		return cands[order[a]].job.ID < cands[order[b]].job.ID
	})
	for _, i := range order {
		c := cands[i]
		lo, hi := ti.slotRange(c.job)
		free := capacity - st.Max(lo, hi)
		if free <= 0 {
			continue
		}
		frac := free / c.job.SizeBytes
		if frac > 1 {
			frac = 1
		}
		st.Add(lo, hi, frac*c.job.SizeBytes)
		res.Frac[c.job.ID] = frac
		res.Value += frac * c.value
	}
}

// greedyPass admits candidates in primary order, then retries skipped
// ones in secondary order, and returns the admission mask.
func greedyPass(cands []candidate, capacity float64, ti *timeIndex,
	primary, secondary func(a, b int) bool) []bool {
	st := newSegTree(len(ti.times) - 1)
	admitted := make([]bool, len(cands))
	tryAdmit := func(i int) bool {
		c := cands[i]
		lo, hi := ti.slotRange(c.job)
		if st.Max(lo, hi)+c.job.SizeBytes > capacity+1e-6 {
			return false
		}
		st.Add(lo, hi, c.job.SizeBytes)
		admitted[i] = true
		return true
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, primary)
	var skipped []int
	for _, i := range order {
		if !tryAdmit(i) {
			skipped = append(skipped, i)
		}
	}
	sort.SliceStable(skipped, secondary)
	for _, i := range skipped {
		tryAdmit(i)
	}
	return admitted
}

// exchangePass tries, for each skipped candidate in value order, to
// evict one lower-value admitted overlapping candidate to make room.
// The number of attempts is bounded so cluster-scale traces stay fast.
func exchangePass(cands []candidate, capacity float64, ti *timeIndex, admitted []bool) {
	st := newSegTree(len(ti.times) - 1)
	for i, c := range cands {
		if admitted[i] {
			lo, hi := ti.slotRange(c.job)
			st.Add(lo, hi, c.job.SizeBytes)
		}
	}
	var skipped []int
	for i := range cands {
		if !admitted[i] {
			skipped = append(skipped, i)
		}
	}
	sort.SliceStable(skipped, func(a, b int) bool {
		return cands[skipped[a]].value > cands[skipped[b]].value
	})
	const maxAttempts = 4000
	attempts := 0
	for _, s := range skipped {
		if attempts >= maxAttempts {
			break
		}
		cs := cands[s]
		lo, hi := ti.slotRange(cs.job)
		if st.Max(lo, hi)+cs.job.SizeBytes <= capacity+1e-6 {
			st.Add(lo, hi, cs.job.SizeBytes)
			admitted[s] = true
			continue
		}
		// Find the cheapest admitted overlapping job whose removal
		// makes s fit and whose value is lower.
		bestVictim := -1
		for v, cv := range cands {
			if !admitted[v] || cv.value >= cs.value {
				continue
			}
			if cv.job.EndSec() <= cs.job.ArrivalSec || cv.job.ArrivalSec >= cs.job.EndSec() {
				continue
			}
			if bestVictim < 0 || cv.value < cands[bestVictim].value {
				vlo, vhi := ti.slotRange(cv.job)
				st.Add(vlo, vhi, -cv.job.SizeBytes)
				fits := st.Max(lo, hi)+cs.job.SizeBytes <= capacity+1e-6
				st.Add(vlo, vhi, cv.job.SizeBytes)
				attempts++
				if fits {
					bestVictim = v
				}
			}
		}
		if bestVictim >= 0 {
			vlo, vhi := ti.slotRange(cands[bestVictim].job)
			st.Add(vlo, vhi, -cands[bestVictim].job.SizeBytes)
			admitted[bestVictim] = false
			st.Add(lo, hi, cs.job.SizeBytes)
			admitted[s] = true
		}
		attempts++
	}
}

func totalValue(cands []candidate, admitted []bool) float64 {
	var v float64
	for i, c := range cands {
		if admitted[i] {
			v += c.value
		}
	}
	return v
}

// solveExact runs depth-first branch and bound with LP-relaxation
// bounds. The relaxation has one variable per candidate (0 <= x <= 1)
// and one capacity row per distinct arrival time (usage only increases
// at arrivals, so those are the binding instants).
func solveExact(cands []candidate, capacity float64, res *Result, nodeBudget int) (*Result, error) {
	n := len(cands)
	// Constraint rows: at each candidate's arrival time, sum of sizes of
	// active candidates <= capacity.
	arrivalTimes := make([]float64, 0, n)
	seen := map[float64]bool{}
	for _, c := range cands {
		t := c.job.ArrivalSec
		if !seen[t] {
			seen[t] = true
			arrivalTimes = append(arrivalTimes, t)
		}
	}
	sort.Float64s(arrivalTimes)
	active := make([][]int, len(arrivalTimes)) // row -> candidate indices
	for i, c := range cands {
		for r, t := range arrivalTimes {
			if c.job.ArrivalSec <= t && t < c.job.EndSec() {
				active[r] = append(active[r], i)
			}
		}
	}

	// Start from the greedy incumbent so pruning bites early.
	greedyRes := &Result{OnSSD: make(map[string]bool), Frac: make(map[string]float64)}
	solveGreedy(cands, capacity, greedyRes, false)
	best := greedyRes.Value
	bestSet := make([]bool, n)
	for i, c := range cands {
		bestSet[i] = greedyRes.OnSSD[c.job.ID]
	}

	const (
		free   = -1
		fixed0 = 0
		fixed1 = 1
	)
	state := make([]int, n)
	for i := range state {
		state[i] = free
	}
	nodes := 0
	exhausted := false
	var rootBound float64
	rootBoundSet := false

	var recurse func()
	recurse = func() {
		if nodes >= nodeBudget {
			exhausted = true
			return
		}
		nodes++

		// Residual capacities; prune infeasible fixings.
		rhs := make([]float64, len(arrivalTimes))
		for r := range rhs {
			rhs[r] = capacity
			for _, i := range active[r] {
				if state[i] == fixed1 {
					rhs[r] -= cands[i].job.SizeBytes
				}
			}
			if rhs[r] < -1e-6 {
				return
			}
			if rhs[r] < 0 {
				rhs[r] = 0
			}
		}
		var fixedValue float64
		for i := range cands {
			if state[i] == fixed1 {
				fixedValue += cands[i].value
			}
		}
		// Build LP over free variables.
		freeIdx := make([]int, 0, n)
		for i := range cands {
			if state[i] == free {
				freeIdx = append(freeIdx, i)
			}
		}
		if len(freeIdx) == 0 {
			if fixedValue > best {
				best = fixedValue
				for i := range cands {
					bestSet[i] = state[i] == fixed1
				}
			}
			return
		}
		col := make(map[int]int, len(freeIdx))
		for c, i := range freeIdx {
			col[i] = c
		}
		prob := lp.Problem{C: make([]float64, len(freeIdx))}
		for c, i := range freeIdx {
			prob.C[c] = cands[i].value
		}
		for r := range arrivalTimes {
			row := make([]float64, len(freeIdx))
			any := false
			for _, i := range active[r] {
				if c, ok := col[i]; ok {
					row[c] = cands[i].job.SizeBytes
					any = true
				}
			}
			if any {
				prob.A = append(prob.A, row)
				prob.B = append(prob.B, rhs[r])
			}
		}
		for c := range freeIdx {
			row := make([]float64, len(freeIdx))
			row[c] = 1
			prob.A = append(prob.A, row)
			prob.B = append(prob.B, 1)
		}
		sol, err := lp.Solve(prob)
		if err != nil || sol.Status == lp.Unbounded {
			return // should not happen with box constraints; treat as pruned
		}
		bound := fixedValue + sol.Objective
		if !rootBoundSet {
			rootBound = bound
			rootBoundSet = true
		}
		if bound <= best+1e-9 {
			return
		}
		// Integral?
		fracIdx, fracDist := -1, -1.0
		for c, x := range sol.X {
			d := math.Abs(x - math.Round(x))
			if d > 1e-6 && d > fracDist {
				fracDist = d
				fracIdx = c
			}
		}
		if fracIdx < 0 {
			// Integral solution: admits exactly the x=1 vars.
			val := fixedValue
			for c, x := range sol.X {
				if x > 0.5 {
					val += cands[freeIdx[c]].value
				}
			}
			if val > best {
				best = val
				for i := range cands {
					bestSet[i] = state[i] == fixed1
				}
				for c, x := range sol.X {
					if x > 0.5 {
						bestSet[freeIdx[c]] = true
					}
				}
			}
			return
		}
		branchVar := freeIdx[fracIdx]
		state[branchVar] = fixed1
		recurse()
		state[branchVar] = fixed0
		recurse()
		state[branchVar] = free
	}
	recurse()

	res.Value = best
	for i, c := range cands {
		res.OnSSD[c.job.ID] = bestSet[i]
		if bestSet[i] {
			res.Frac[c.job.ID] = 1
		}
	}
	if rootBoundSet {
		res.UpperBound = rootBound
	} else {
		for _, c := range cands {
			res.UpperBound += c.value
		}
	}
	res.Exact = !exhausted
	return res, nil
}

// Feasible verifies that a decision set never exceeds capacity; it is
// used by tests and by the simulator's invariant checks.
func Feasible(jobs []*trace.Job, onSSD map[string]bool, capacity float64) bool {
	type ev struct {
		at    float64
		delta float64
	}
	var events []ev
	for _, j := range jobs {
		if onSSD[j.ID] {
			events = append(events, ev{j.ArrivalSec, j.SizeBytes}, ev{j.EndSec(), -j.SizeBytes})
		}
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].delta < events[b].delta
	})
	var usage float64
	for _, e := range events {
		usage += e.delta
		if usage > capacity+1e-6 {
			return false
		}
	}
	return true
}

// Value sums the objective coefficients of the admitted jobs under a
// decision set.
func Value(jobs []*trace.Job, onSSD map[string]bool, cm *cost.Model, obj Objective) float64 {
	var v float64
	for _, j := range jobs {
		if onSSD[j.ID] {
			v += jobValue(j, cm, obj)
		}
	}
	return v
}
