package oracle

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/trace"
)

// hotJob returns a job with positive SSD savings.
func hotJob(id string, arrival, lifetime, size float64) *trace.Job {
	return &trace.Job{
		ID: id, ArrivalSec: arrival, LifetimeSec: lifetime, SizeBytes: size,
		ReadBytes: size * 50, WriteBytes: size * 1.2,
		AvgReadSizeBytes: 32 * 1024, CacheHitFrac: 0.1,
	}
}

// coldJob returns a job with negative SSD savings (write-dominated).
func coldJob(id string, arrival, lifetime, size float64) *trace.Job {
	return &trace.Job{
		ID: id, ArrivalSec: arrival, LifetimeSec: lifetime, SizeBytes: size,
		ReadBytes: size * 0.05, WriteBytes: size * 1.5,
		AvgReadSizeBytes: 8 << 20, CacheHitFrac: 0.6,
	}
}

func TestSolveEmptyAndZeroCapacity(t *testing.T) {
	cm := cost.Default()
	cfg := DefaultConfig()
	r, err := Solve(nil, 100, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0 || !r.Exact {
		t.Errorf("empty solve: %+v", r)
	}
	jobs := []*trace.Job{hotJob("a", 0, 100, 1e9)}
	r, err = Solve(jobs, 0, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.OnSSD["a"] || r.Value != 0 {
		t.Errorf("zero capacity admitted a job: %+v", r)
	}
	if _, err := Solve(jobs, -1, cm, cfg); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestSolveNeverAdmitsNegative(t *testing.T) {
	cm := cost.Default()
	jobs := []*trace.Job{
		hotJob("hot", 0, 100, 1e9),
		coldJob("cold", 0, 100, 1e9),
	}
	if cm.Savings(jobs[1]) >= 0 {
		t.Fatalf("test setup: cold job has savings %g >= 0", cm.Savings(jobs[1]))
	}
	r, err := Solve(jobs, 1e10, cm, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.OnSSD["hot"] {
		t.Error("hot job should be admitted with ample capacity")
	}
	if r.OnSSD["cold"] {
		t.Error("negative-savings job admitted")
	}
}

func TestSolveExactPrefersValueOverDensity(t *testing.T) {
	cm := cost.Default()
	// One big hot job vs two small overlapping ones. Capacity fits either
	// the big one or both small ones; the big one is worth more in total
	// but the small ones are denser. Exact must pick the better sum.
	big := hotJob("big", 0, 100, 900)
	s1 := hotJob("s1", 0, 100, 300)
	s2 := hotJob("s2", 0, 100, 300)
	jobs := []*trace.Job{big, s1, s2}
	vBig := cm.Savings(big)
	vSmall := cm.Savings(s1) + cm.Savings(s2)
	r, err := Solve(jobs, 900, cm, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact {
		t.Fatal("instance should be exactly solvable")
	}
	want := math.Max(vBig, vSmall)
	if math.Abs(r.Value-want) > want*1e-6 {
		t.Errorf("value = %g, want %g (big=%g, small pair=%g)", r.Value, want, vBig, vSmall)
	}
}

// bruteForce enumerates all feasible subsets (n <= 16).
func bruteForce(jobs []*trace.Job, capacity float64, cm *cost.Model, obj Objective) float64 {
	n := len(jobs)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		sel := map[string]bool{}
		var val float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sel[jobs[i].ID] = true
				val += jobValue(jobs[i], cm, obj)
			}
		}
		if val > best && Feasible(jobs, sel, capacity) {
			best = val
		}
	}
	return best
}

func randomInstance(rng *rand.Rand, n int) []*trace.Job {
	jobs := make([]*trace.Job, n)
	for i := 0; i < n; i++ {
		arrival := rng.Float64() * 1000
		life := 50 + rng.Float64()*500
		size := 100 + rng.Float64()*900
		if rng.Float64() < 0.3 {
			jobs[i] = coldJob(idFor(i), arrival, life, size)
		} else {
			jobs[i] = hotJob(idFor(i), arrival, life, size)
		}
	}
	return jobs
}

func idFor(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestSolveExactMatchesBruteForce(t *testing.T) {
	cm := cost.Default()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8)
		jobs := randomInstance(rng, n)
		capacity := 300 + rng.Float64()*1500
		for _, obj := range []Objective{TCO, TCIO} {
			cfg := DefaultConfig()
			cfg.Objective = obj
			r, err := Solve(jobs, capacity, cm, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Exact {
				t.Fatalf("trial %d: small instance not solved exactly", trial)
			}
			want := bruteForce(jobs, capacity, cm, obj)
			if math.Abs(r.Value-want) > 1e-9+want*1e-9 {
				t.Errorf("trial %d obj %v: exact = %g, brute force = %g", trial, obj, r.Value, want)
			}
			if !Feasible(jobs, r.OnSSD, capacity) {
				t.Errorf("trial %d: exact solution infeasible", trial)
			}
			if r.Value > r.UpperBound+1e-6 {
				t.Errorf("trial %d: value %g exceeds upper bound %g", trial, r.Value, r.UpperBound)
			}
		}
	}
}

// TestGreedyNearOptimalAdversarial uses jobs whose sizes are comparable
// to the capacity — greedy's worst regime (pure knapsack). The exchange
// pass keeps it within a moderate factor of exact, and it must never
// beat exact or go infeasible.
func TestGreedyNearOptimalAdversarial(t *testing.T) {
	cm := cost.Default()
	rng := rand.New(rand.NewSource(41))
	var worst float64 = 1
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(10)
		jobs := randomInstance(rng, n)
		capacity := 500 + rng.Float64()*2000

		exactCfg := DefaultConfig()
		exact, err := Solve(jobs, capacity, cm, exactCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !exact.Exact {
			continue
		}
		greedyCfg := DefaultConfig()
		greedyCfg.ExactLimit = 1 // force greedy path
		greedy, err := Solve(jobs, capacity, cm, greedyCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !Feasible(jobs, greedy.OnSSD, capacity) {
			t.Fatalf("trial %d: greedy infeasible", trial)
		}
		if greedy.Value > exact.Value+1e-9 {
			t.Fatalf("trial %d: greedy %g beats exact %g", trial, greedy.Value, exact.Value)
		}
		if exact.Value > 0 {
			ratio := greedy.Value / exact.Value
			if ratio < worst {
				worst = ratio
			}
		}
	}
	if worst < 0.6 {
		t.Errorf("worst adversarial greedy/exact ratio = %.3f, want >= 0.6", worst)
	}
}

// TestGreedyNearOptimalSmallJobs covers the regime the oracle actually
// runs in on cluster traces: every job is small relative to capacity.
// There greedy must be within a few percent of exact.
func TestGreedyNearOptimalSmallJobs(t *testing.T) {
	cm := cost.Default()
	rng := rand.New(rand.NewSource(43))
	var worst float64 = 1
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(10)
		jobs := make([]*trace.Job, n)
		for i := 0; i < n; i++ {
			arrival := rng.Float64() * 1000
			life := 50 + rng.Float64()*500
			size := 10 + rng.Float64()*30 // << capacity
			if rng.Float64() < 0.3 {
				jobs[i] = coldJob(idFor(i), arrival, life, size)
			} else {
				jobs[i] = hotJob(idFor(i), arrival, life, size)
			}
		}
		capacity := 120 + rng.Float64()*200

		exact, err := Solve(jobs, capacity, cm, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !exact.Exact {
			continue
		}
		greedyCfg := DefaultConfig()
		greedyCfg.ExactLimit = 1
		greedy, err := Solve(jobs, capacity, cm, greedyCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !Feasible(jobs, greedy.OnSSD, capacity) {
			t.Fatalf("trial %d: greedy infeasible", trial)
		}
		if exact.Value > 0 {
			ratio := greedy.Value / exact.Value
			if ratio < worst {
				worst = ratio
			}
		}
	}
	if worst < 0.95 {
		t.Errorf("worst small-job greedy/exact ratio = %.3f, want >= 0.95", worst)
	}
}

func TestGreedyLargeInstanceFeasible(t *testing.T) {
	cm := cost.Default()
	cfg := trace.DefaultGeneratorConfig("C0", 55)
	cfg.DurationSec = 2 * 24 * 3600
	tr := trace.NewGenerator(cfg).Generate()
	capacity := tr.PeakSSDUsage() * 0.05
	r, err := Solve(tr.Jobs, capacity, cm, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact {
		t.Skip("instance unexpectedly small")
	}
	if !Feasible(tr.Jobs, r.OnSSD, capacity) {
		t.Fatal("greedy solution violates capacity on a cluster-scale trace")
	}
	if r.Value <= 0 {
		t.Error("greedy found no savings on a cluster-scale trace")
	}
	if r.Value > r.UpperBound {
		t.Errorf("value %g exceeds bound %g", r.Value, r.UpperBound)
	}
	// Consistency between reported value and the decision set.
	recomputed := Value(tr.Jobs, r.OnSSD, cm, TCO)
	if math.Abs(recomputed-r.Value) > math.Abs(r.Value)*1e-9 {
		t.Errorf("reported value %g != recomputed %g", r.Value, recomputed)
	}
}

func TestOracleMonotoneInCapacity(t *testing.T) {
	cm := cost.Default()
	rng := rand.New(rand.NewSource(61))
	jobs := randomInstance(rng, 14)
	prev := -1.0
	for _, frac := range []float64{0, 0.25, 0.5, 1, 2} {
		r, err := Solve(jobs, frac*2000, cm, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if r.Value < prev-1e-9 {
			t.Fatalf("oracle value decreased with more capacity: %g after %g", r.Value, prev)
		}
		prev = r.Value
	}
}

func TestFeasible(t *testing.T) {
	jobs := []*trace.Job{
		hotJob("a", 0, 100, 60),
		hotJob("b", 50, 100, 60),
	}
	both := map[string]bool{"a": true, "b": true}
	if Feasible(jobs, both, 100) {
		t.Error("overlapping jobs exceeding capacity reported feasible")
	}
	if !Feasible(jobs, both, 120) {
		t.Error("fitting jobs reported infeasible")
	}
	one := map[string]bool{"a": true}
	if !Feasible(jobs, one, 60) {
		t.Error("single job reported infeasible")
	}
}

func TestObjectiveString(t *testing.T) {
	if TCO.String() != "tco" || TCIO.String() != "tcio" {
		t.Errorf("objective strings: %s %s", TCO, TCIO)
	}
}
