package oracle

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/trace"
)

// BenchmarkGreedyOracleClusterScale measures the scalable oracle on a
// cluster-sized trace — the cost of one Fig. 7 bound point.
func BenchmarkGreedyOracleClusterScale(b *testing.B) {
	cfg := trace.DefaultGeneratorConfig("bench", 7)
	cfg.DurationSec = 2 * 24 * 3600
	tr := trace.NewGenerator(cfg).Generate()
	cm := cost.Default()
	quota := tr.PeakSSDUsage() * 0.05
	ocfg := DefaultConfig()
	ocfg.Fractional = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(tr.Jobs, quota, cm, ocfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Jobs)), "jobs")
}

// BenchmarkExactOracleSmall measures the branch-and-bound path.
func BenchmarkExactOracleSmall(b *testing.B) {
	cm := cost.Default()
	jobs := make([]*trace.Job, 0, 24)
	for i := 0; i < 24; i++ {
		jobs = append(jobs, hotJob(idFor(i), float64(i*40), 300, 200+float64(i%7)*100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Solve(jobs, 1200, cm, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !r.Exact {
			b.Fatal("expected exact solve")
		}
	}
}
