package byom_test

import (
	"testing"

	"repro/byom"
)

// TestPublicAPIEndToEnd walks the full documented flow: generate,
// train, simulate, compare against baselines and the oracle.
func TestPublicAPIEndToEnd(t *testing.T) {
	gcfg := byom.DefaultGeneratorConfig("demo", 7)
	gcfg.DurationSec = 4 * 24 * 3600
	gcfg.NumUsers = 8
	full := byom.GenerateCluster(gcfg)
	train, test := full.SplitAt(2 * 24 * 3600)
	if len(train.Jobs) == 0 || len(test.Jobs) == 0 {
		t.Fatal("empty generated trace")
	}

	cm := byom.DefaultCostModel()
	opts := byom.DefaultTrainOptions()
	opts.GBDT.NumRounds = 10
	model, err := byom.TrainCategoryModel(train.Jobs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}

	quota := test.PeakSSDUsage() * 0.01
	ranking, err := byom.NewAdaptiveRankingPolicy(model, cm)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := byom.Simulate(test, ranking, cm, byom.SimConfig{SSDQuota: quota})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := byom.Simulate(test, byom.NewFirstFitPolicy(), cm, byom.SimConfig{SSDQuota: quota})
	if err != nil {
		t.Fatal(err)
	}
	if rres.TCOSavingsPercent() <= fres.TCOSavingsPercent() {
		t.Errorf("ranking %.3f%% <= firstfit %.3f%% at tight quota",
			rres.TCOSavingsPercent(), fres.TCOSavingsPercent())
	}

	heur := byom.NewHeuristicPolicy(cm, train.Jobs)
	if _, err := byom.Simulate(test, heur, cm, byom.SimConfig{SSDQuota: quota}); err != nil {
		t.Fatal(err)
	}

	sol, err := byom.SolveOracle(test.Jobs, quota, cm, byom.DefaultOracleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value <= 0 {
		t.Error("oracle found no savings")
	}
}

func TestPublicAPITracePersistence(t *testing.T) {
	gcfg := byom.DefaultGeneratorConfig("persist", 9)
	gcfg.DurationSec = 6 * 3600
	gcfg.NumUsers = 3
	tr := byom.GenerateCluster(gcfg)
	path := t.TempDir() + "/t.jsonl"
	if err := byom.SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := byom.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(tr.Jobs) {
		t.Errorf("round trip lost jobs: %d vs %d", len(got.Jobs), len(tr.Jobs))
	}
}

func TestPublicAPIModelPersistence(t *testing.T) {
	gcfg := byom.DefaultGeneratorConfig("m", 11)
	gcfg.DurationSec = 12 * 3600
	gcfg.NumUsers = 4
	tr := byom.GenerateCluster(gcfg)
	cm := byom.DefaultCostModel()
	opts := byom.DefaultTrainOptions()
	opts.GBDT.NumRounds = 3
	model, err := byom.TrainCategoryModel(tr.Jobs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.json"
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := byom.LoadCategoryModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs[:20] {
		if got.Predict(j) != model.Predict(j) {
			t.Fatal("prediction changed after persistence")
		}
	}
}

func TestClusterConfigsExposed(t *testing.T) {
	cfgs := byom.ClusterConfigs(4, 1)
	if len(cfgs) != 4 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	rates := byom.DefaultCostRates()
	rates.SSDWearPerByteWritten *= 2
	cm := byom.NewCostModel(rates)
	if cm.Rates.SSDWearPerByteWritten != rates.SSDWearPerByteWritten {
		t.Error("custom rates not applied")
	}
}
