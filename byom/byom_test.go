package byom_test

import (
	"context"
	"testing"
	"time"

	"repro/byom"
)

// TestPublicAPIEndToEnd walks the full documented flow: generate,
// train, simulate, compare against baselines and the oracle.
func TestPublicAPIEndToEnd(t *testing.T) {
	gcfg := byom.DefaultGeneratorConfig("demo", 7)
	gcfg.DurationSec = 4 * 24 * 3600
	gcfg.NumUsers = 8
	full := byom.GenerateCluster(gcfg)
	train, test := full.SplitAt(2 * 24 * 3600)
	if len(train.Jobs) == 0 || len(test.Jobs) == 0 {
		t.Fatal("empty generated trace")
	}

	cm := byom.DefaultCostModel()
	opts := byom.DefaultTrainOptions()
	opts.GBDT.NumRounds = 10
	model, err := byom.TrainCategoryModel(train.Jobs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}

	quota := test.PeakSSDUsage() * 0.01
	ranking, err := byom.NewAdaptiveRankingPolicy(model, cm)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := byom.Simulate(test, ranking, cm, byom.SimConfig{SSDQuota: quota})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := byom.Simulate(test, byom.NewFirstFitPolicy(), cm, byom.SimConfig{SSDQuota: quota})
	if err != nil {
		t.Fatal(err)
	}
	if rres.TCOSavingsPercent() <= fres.TCOSavingsPercent() {
		t.Errorf("ranking %.3f%% <= firstfit %.3f%% at tight quota",
			rres.TCOSavingsPercent(), fres.TCOSavingsPercent())
	}

	heur := byom.NewHeuristicPolicy(cm, train.Jobs)
	if _, err := byom.Simulate(test, heur, cm, byom.SimConfig{SSDQuota: quota}); err != nil {
		t.Fatal(err)
	}

	sol, err := byom.SolveOracle(test.Jobs, quota, cm, byom.DefaultOracleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value <= 0 {
		t.Error("oracle found no savings")
	}
}

func TestPublicAPITracePersistence(t *testing.T) {
	gcfg := byom.DefaultGeneratorConfig("persist", 9)
	gcfg.DurationSec = 6 * 3600
	gcfg.NumUsers = 3
	tr := byom.GenerateCluster(gcfg)
	path := t.TempDir() + "/t.jsonl"
	if err := byom.SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := byom.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(tr.Jobs) {
		t.Errorf("round trip lost jobs: %d vs %d", len(got.Jobs), len(tr.Jobs))
	}
}

func TestPublicAPIModelPersistence(t *testing.T) {
	gcfg := byom.DefaultGeneratorConfig("m", 11)
	gcfg.DurationSec = 12 * 3600
	gcfg.NumUsers = 4
	tr := byom.GenerateCluster(gcfg)
	cm := byom.DefaultCostModel()
	opts := byom.DefaultTrainOptions()
	opts.GBDT.NumRounds = 3
	model, err := byom.TrainCategoryModel(tr.Jobs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.json"
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := byom.LoadCategoryModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs[:20] {
		if got.Predict(j) != model.Predict(j) {
			t.Fatal("prediction changed after persistence")
		}
	}
}

func TestClusterConfigsExposed(t *testing.T) {
	cfgs := byom.ClusterConfigs(4, 1)
	if len(cfgs) != 4 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	rates := byom.DefaultCostRates()
	rates.SSDWearPerByteWritten *= 2
	cm := byom.NewCostModel(rates)
	if cm.Rates.SSDWearPerByteWritten != rates.SSDWearPerByteWritten {
		t.Error("custom rates not applied")
	}
}

// TestPublicAPIServer exercises the online serving path: NewServer for
// the one-model case, then registry-managed hot swap under traffic.
func TestPublicAPIServer(t *testing.T) {
	gcfg := byom.DefaultGeneratorConfig("serve-demo", 3)
	gcfg.DurationSec = 2 * 24 * 3600
	gcfg.NumUsers = 6
	full := byom.GenerateCluster(gcfg)
	train, test := full.SplitAt(1 * 24 * 3600)

	cm := byom.DefaultCostModel()
	opts := byom.DefaultTrainOptions()
	opts.NumCategories = 5
	opts.GBDT.NumRounds = 4
	opts.GBDT.MaxDepth = 3
	model, err := byom.TrainCategoryModel(train.Jobs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := byom.NewServer(model, cm, byom.DefaultServeConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	jobs := test.Jobs
	if len(jobs) > 200 {
		jobs = jobs[:200]
	}
	decisions, err := srv.SubmitBatch(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decisions {
		if want := model.Predict(jobs[i]); d.Category != want {
			t.Fatalf("job %d: served category %d, model predicts %d", i, d.Category, want)
		}
	}
	if stats := srv.Stats(); stats.Submitted != int64(len(jobs)) {
		t.Fatalf("stats count %d, want %d", stats.Submitted, len(jobs))
	}

	// Registry-managed server: publishing v2 hot-swaps it.
	reg := byom.NewModelRegistry()
	if _, err := reg.Publish("pipeline", model, 0); err != nil {
		t.Fatal(err)
	}
	srv2, err := byom.NewServerFromRegistry(reg, "pipeline", cm, byom.DefaultServeConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if _, err := reg.Publish("pipeline", model, 1000); err != nil {
		t.Fatal(err)
	}
	if got := srv2.ModelVersion(); got != 2 {
		t.Fatalf("server did not swap to v2 (serving v%d)", got)
	}
	d, err := srv2.Submit(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.ModelVersion != 2 {
		t.Fatalf("decision served by v%d, want v2", d.ModelVersion)
	}
}

// TestPublicAPIOnlineLoop walks the documented online-learning flow:
// publish, serve, stream feedback through the learner, and observe the
// retrained model hot-swap into the server mid-replay.
func TestPublicAPIOnlineLoop(t *testing.T) {
	gcfg := byom.DefaultGeneratorConfig("online-demo", 5)
	gcfg.DurationSec = 3 * 24 * 3600
	gcfg.NumUsers = 6
	full := byom.GenerateCluster(gcfg)
	train, replay := full.SplitAt(1 * 24 * 3600)

	cm := byom.DefaultCostModel()
	opts := byom.DefaultTrainOptions()
	opts.NumCategories = 5
	opts.GBDT.NumRounds = 4
	model, err := byom.TrainCategoryModel(train.Jobs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}

	reg := byom.NewModelRegistry()
	if _, err := reg.Publish("pipeline", model, 0); err != nil {
		t.Fatal(err)
	}
	scfg := byom.DefaultServeConfig(5)
	scfg.BatchSize = 1 // sequential virtual-time replay
	srv, err := byom.NewServerFromRegistry(reg, "pipeline", cm, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	lcfg := byom.DefaultOnlineConfig(5)
	lcfg.Train = opts
	lcfg.RetrainEverySec = 12 * 3600
	lcfg.MinRetrainJobs = 200
	lcfg.Window = byom.OnlineWindowConfig{MaxCount: 2000, HorizonSec: 24 * 3600}
	var accepted int
	lcfg.OnEvent = func(ev byom.OnlineEvent) {
		if ev.Accepted {
			accepted++
		}
	}
	learner, err := byom.NewOnlineLearner(reg, "pipeline", cm, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer learner.Close()

	quota := replay.PeakSSDUsage() * 0.05
	res, err := byom.RunOnlineLoop(replay, srv, learner, cm, byom.SimConfig{SSDQuota: quota, KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TCOSaved <= 0 {
		t.Error("online loop saved nothing")
	}
	stats := learner.Stats()
	if stats.Observations != int64(len(replay.Jobs)) {
		t.Errorf("learner observed %d of %d outcomes", stats.Observations, len(replay.Jobs))
	}
	if stats.Retrains == 0 {
		t.Fatal("learner never retrained on a 2-day replay with a 12h cadence")
	}
	if accepted > 0 && srv.Swaps() == 0 {
		t.Error("accepted candidates but server never swapped")
	}
	if _, err := byom.TailSavingsPercent(res, cm, replay.Jobs[0].ArrivalSec); err != nil {
		t.Errorf("tail savings: %v", err)
	}
}

// TestPublicAPIDaemon walks the documented network flow: train, stand
// up a daemon on a loopback port, place over the wire with a client,
// post feedback, read model metadata and drain.
func TestPublicAPIDaemon(t *testing.T) {
	gcfg := byom.DefaultGeneratorConfig("daemon-demo", 9)
	gcfg.DurationSec = 24 * 3600
	gcfg.NumUsers = 5
	full := byom.GenerateCluster(gcfg)

	cm := byom.DefaultCostModel()
	opts := byom.DefaultTrainOptions()
	opts.NumCategories = 5
	opts.GBDT.NumRounds = 4
	opts.GBDT.MaxDepth = 3
	model, err := byom.TrainCategoryModel(full.Jobs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := byom.NewModelRegistry()
	if _, err := reg.Publish("svc", model, 0); err != nil {
		t.Fatal(err)
	}
	d, err := byom.NewDaemon(reg, "svc", cm, byom.DefaultDaemonConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	c, err := byom.NewClient(byom.DefaultClientConfig(d.BaseURL()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	jobs := full.Jobs
	if len(jobs) > 64 {
		jobs = jobs[:64]
	}
	decisions, err := c.Place(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != len(jobs) {
		t.Fatalf("%d decisions for %d jobs", len(decisions), len(jobs))
	}
	if decisions[0].JobID != jobs[0].ID {
		t.Errorf("decision echoes %q, want %q", decisions[0].JobID, jobs[0].ID)
	}
	o := byom.Outcome{WantedSSD: decisions[0].Admit, FracOnSSD: 1, SpilledAt: -1, EvictedAt: -1}
	if err := c.Observe(ctx, jobs[0], decisions[0].Category, o); err != nil {
		t.Fatal(err)
	}
	info, err := c.ModelInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Workload != "svc" || info.ModelVersion != 1 || info.NumCategories != 5 {
		t.Errorf("model info %+v", info)
	}
	if stats := d.Stats(); stats.PlaceJobs != int64(len(jobs)) {
		t.Errorf("daemon counted %d placements, want %d", stats.PlaceJobs, len(jobs))
	}
}

// TestPublicAPIRouter walks the multi-node plane flow: replicate one
// source workload's model to two per-node registries, stand up two
// daemons, and route placements across them with NewRouter.
func TestPublicAPIRouter(t *testing.T) {
	gcfg := byom.DefaultGeneratorConfig("plane-demo", 13)
	gcfg.DurationSec = 24 * 3600
	gcfg.NumUsers = 5
	full := byom.GenerateCluster(gcfg)

	cm := byom.DefaultCostModel()
	opts := byom.DefaultTrainOptions()
	opts.NumCategories = 5
	opts.GBDT.NumRounds = 4
	opts.GBDT.MaxDepth = 3
	model, err := byom.TrainCategoryModel(full.Jobs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}
	src := byom.NewModelRegistry()
	if _, err := src.Publish("svc", model, 0); err != nil {
		t.Fatal(err)
	}
	repl := byom.NewModelReplicator(src, "svc")
	defer repl.Close()

	var daemons []*byom.Daemon
	var urls []string
	for i := 0; i < 2; i++ {
		reg := byom.NewModelRegistry()
		if _, err := repl.Attach(reg, "svc"); err != nil {
			t.Fatal(err)
		}
		d, err := byom.NewDaemon(reg, "svc", cm, byom.DefaultDaemonConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, d)
		urls = append(urls, d.BaseURL())
	}
	defer func() {
		for _, d := range daemons {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := d.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			cancel()
		}
	}()

	r, err := byom.NewRouter(byom.DefaultRouterConfig(urls))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	jobs := full.Jobs
	if len(jobs) > 128 {
		jobs = jobs[:128]
	}
	decisions, err := r.Place(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != len(jobs) {
		t.Fatalf("%d decisions for %d jobs", len(decisions), len(jobs))
	}
	for i, d := range decisions {
		if d.JobID != jobs[i].ID {
			t.Fatalf("decision %d echoes %q, want %q", i, d.JobID, jobs[i].ID)
		}
	}
	rs := r.Stats()
	if rs.Jobs != int64(len(jobs)) || rs.Failures != 0 {
		t.Errorf("router stats %+v, want %d jobs and 0 failures", rs, len(jobs))
	}
	if st := repl.Stats(); st.Publishes != 2 || st.Errors != 0 {
		t.Errorf("replicator stats %+v, want 2 publishes", st)
	}
	served := int64(0)
	for _, d := range daemons {
		served += d.Stats().PlaceJobs
	}
	if served != int64(len(jobs)) {
		t.Errorf("daemons served %d jobs, want %d", served, len(jobs))
	}
}
