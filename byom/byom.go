// Package byom is the public API of the Bring-Your-Own-Model storage
// placement library — a Go reproduction of "A Bring-Your-Own-Model
// Approach for ML-Driven Storage Placement in Warehouse-Scale
// Computers" (MLSys 2025).
//
// The BYOM design splits placement across two layers:
//
//   - Application layer: each workload trains its own small,
//     interpretable category model (gradient boosted trees over
//     Table-2-style features) that ranks its jobs by "importance" —
//     a proxy for the TCO savings of placing the job on SSD.
//   - Storage layer: the Adaptive Category Selection Algorithm
//     (Algorithm 1) converts those per-job category hints into
//     admissions under whatever SSD capacity happens to be available,
//     using spillover feedback as its control signal.
//
// Typical usage:
//
//	cm := byom.DefaultCostModel()
//	model, err := byom.TrainCategoryModel(trainJobs, cm, byom.DefaultTrainOptions())
//	policy, err := byom.NewAdaptiveRankingPolicy(model, cm)
//	result, err := byom.Simulate(testTrace, policy, cm, byom.SimConfig{SSDQuota: quota})
//	fmt.Println(result.TCOSavingsPercent())
//
// Beyond the offline pipeline, the package exposes the deployment
// stack: NewServerFromRegistry serves placements concurrently with
// batched inference and registry-driven hot swap, NewOnlineLearner
// closes the loop by retraining on served outcomes and publishing
// gate-approved candidates back to the registry, and NewDaemon/
// NewClient put that serving stack behind a JSON-over-HTTP wire
// protocol with admission control and an ops plane (see
// docs/ARCHITECTURE.md for the full data flow).
package byom

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/online"
	"repro/internal/oracle"
	"repro/internal/policy"
	"repro/internal/rebalance"
	"repro/internal/registry"
	"repro/internal/router"
	"repro/internal/rpc"
	"repro/internal/rpc/wire"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Core data types re-exported from the internal packages.
type (
	// Job is one shuffle job: the unit of placement.
	Job = trace.Job
	// Trace is a time-ordered job collection.
	Trace = trace.Trace
	// Metadata holds the execution-metadata features (group B).
	Metadata = trace.Metadata
	// Resources holds the allocated-resources features (group C).
	Resources = trace.Resources
	// History holds the historical system metrics (group A).
	History = trace.History

	// CostModel evaluates TCIO and TCO (Section 3).
	CostModel = cost.Model
	// CostRates are the model's conversion rates.
	CostRates = cost.Rates

	// CategoryModel is a trained BYOM importance-ranking model.
	CategoryModel = core.CategoryModel
	// TrainOptions configures category-model training.
	TrainOptions = core.TrainOptions
	// AdaptiveConfig holds Algorithm 1's hyperparameters.
	AdaptiveConfig = core.AdaptiveConfig

	// Policy is the placement-policy interface used by Simulate.
	Policy = sim.Policy
	// SimConfig configures a simulation run.
	SimConfig = sim.Config
	// SimResult aggregates a simulation run.
	SimResult = sim.Result

	// GeneratorConfig configures the synthetic workload generator.
	GeneratorConfig = trace.GeneratorConfig

	// OracleConfig configures the clairvoyant ILP oracle.
	OracleConfig = oracle.Config
	// OracleResult holds oracle placement decisions.
	OracleResult = oracle.Result

	// PartialOutcome describes how much of a job ran on SSD, for
	// partial-savings accounting.
	PartialOutcome = cost.PartialOutcome

	// Server is the concurrent placement-serving front-end: sharded
	// Algorithm 1 controllers fed by batched forest inference.
	Server = serve.Server
	// ServeConfig tunes the serving layer (shards, batching, flush).
	ServeConfig = serve.Config
	// ServeDecision is one served placement verdict.
	ServeDecision = serve.Decision
	// ServeStats is a snapshot of serving throughput/latency counters.
	ServeStats = metrics.ShardSnapshot
	// ModelRegistry stores per-workload model versions; publishing to
	// it hot-swaps any server resolving that workload.
	ModelRegistry = registry.Registry
	// ModelVersion identifies one published model version.
	ModelVersion = registry.Version
	// Outcome reports how a placement played out (spillover feedback).
	Outcome = sim.Outcome

	// OnlineLearner closes the serving→training→deployment loop:
	// it windows the feedback stream, retrains on a cadence or drift
	// trigger, gates candidates on holdout TCO savings and publishes
	// survivors to the registry (hot-swapping subscribed servers).
	OnlineLearner = online.Learner
	// OnlineConfig tunes the continuous-learning loop.
	OnlineConfig = online.Config
	// OnlineWindowConfig bounds the learner's sliding feedback window.
	OnlineWindowConfig = online.WindowConfig
	// OnlineDriftConfig tunes the category-distribution drift trigger.
	OnlineDriftConfig = online.DriftConfig
	// OnlineEvent reports one retrain attempt (gate verdict, shadow
	// scores, published version).
	OnlineEvent = online.Event
	// OnlineTrainer overrides the retrain function — the BYOM premise
	// applied to the retrain path.
	OnlineTrainer = online.Trainer
	// OnlineStats is a snapshot of the learner's loop counters.
	OnlineStats = metrics.OnlineSnapshot

	// FleetConfig controls a multi-cluster fleet run: heterogeneous
	// cluster specs, the shard worker pool, training options and the
	// optional per-cluster online loop.
	FleetConfig = fleet.Config
	// FleetTraceConfig seeds the heterogeneous cluster specs.
	FleetTraceConfig = trace.FleetConfig
	// FleetClusterSpec is one cluster's generation + quota parameters.
	FleetClusterSpec = trace.ClusterSpec
	// FleetReport is the merged fleet view: per-cluster rows plus
	// fleet-aggregate TCO savings per model regime.
	FleetReport = fleet.Report
	// FleetClusterResult is one cluster's row in the report.
	FleetClusterResult = fleet.ClusterResult
	// FleetStats is a snapshot of the fleet run counters.
	FleetStats = metrics.FleetSnapshot

	// RebalanceConfig tunes the heat-aware global rebalancer: decay
	// half-life, knapsack re-solve cadence, heat floor and the LP size
	// cap. The zero value means sensible defaults everywhere.
	RebalanceConfig = rebalance.Config
	// RebalancePolicy wraps a write-time policy with the rebalancer:
	// the inner policy proposes at write time, the periodic knapsack
	// plan disposes (demotions and early evictions).
	RebalancePolicy = rebalance.Policy
	// RebalanceHeatTracker accumulates exponentially-decayed
	// per-workload heat from outcome observations.
	RebalanceHeatTracker = rebalance.HeatTracker
	// RebalanceStats is a snapshot of the rebalancer counters.
	RebalanceStats = metrics.RebalanceSnapshot

	// Daemon is the network-facing placement service: the serving
	// layer behind a JSON-over-HTTP wire protocol with per-endpoint
	// admission control, graceful drain and a /healthz + /varz ops
	// plane.
	Daemon = rpc.Daemon
	// DaemonConfig tunes the daemon (serving core, in-flight limits,
	// queue deadline, batch/body caps, optional attached learner).
	DaemonConfig = rpc.Config
	// Client speaks the wire protocol to one daemon with connection
	// reuse, per-request deadlines and bounded retries on sheds.
	Client = rpc.Client
	// ClientConfig tunes a placement client.
	ClientConfig = rpc.ClientConfig
	// ClientStats counts a client's request outcomes (sheds, retries).
	ClientStats = rpc.ClientStats
	// StreamSession is one persistent binary placement stream: a
	// single upgraded connection carrying pre-binned place frames both
	// ways. Open one per submitting goroutine with OpenStream.
	StreamSession = rpc.StreamSession
	// RPCStats is a snapshot of the daemon's request counters.
	RPCStats = metrics.RPCSnapshot

	// Router spreads placement batches across a multi-node plane of
	// daemons on a bounded-load consistent-hash ring keyed by workload
	// template, with health probing, shed-aware weight decay and
	// reroute-on-failure.
	Router = router.Router
	// RouterConfig tunes the routing layer (ring geometry, bound
	// factor, probe cadence, per-node client template).
	RouterConfig = router.Config
	// RouterNodeState is one backend's health as the router sees it.
	RouterNodeState = router.NodeState
	// RouterStats is a snapshot of the router's routing counters.
	RouterStats = metrics.RouterSnapshot
	// ModelReplicator mirrors one source workload's publish/rollback
	// history into follower registries — the control plane that keeps
	// every node of a placement plane serving the same model version.
	ModelReplicator = router.Replicator
	// ReplicatorStats counts a replicator's publish/rollback fan-out.
	ReplicatorStats = router.ReplicatorStats
	// WireDecision is one placement verdict as it crosses the wire.
	WireDecision = wire.Decision
	// WireModelInfo is the daemon's active-model metadata payload.
	WireModelInfo = wire.ModelInfo
)

// FullResidency is the PartialOutcome of a job that kept its SSD
// allocation for its whole lifetime with the given byte fraction.
func FullResidency(fracOnSSD float64) PartialOutcome {
	return cost.PartialOutcome{FracOnSSD: fracOnSSD, ResidencyFrac: 1}
}

// DefaultCostModel returns the calibrated warehouse-scale cost model.
func DefaultCostModel() *CostModel { return cost.Default() }

// NewCostModel builds a cost model from explicit rates.
func NewCostModel(r CostRates) *CostModel { return cost.NewModel(r) }

// DefaultCostRates returns the calibrated rates (configurable copy).
func DefaultCostRates() CostRates { return cost.DefaultRates() }

// DefaultTrainOptions mirrors the paper's model setup (15 categories,
// depth-6 gradient boosted trees).
func DefaultTrainOptions() TrainOptions { return core.DefaultTrainOptions() }

// TrainCategoryModel trains a workload's category model on historical
// jobs: it fits the density-quantile label design, builds metadata
// vocabularies and trains the pointwise ranking classifier.
func TrainCategoryModel(train []*Job, cm *CostModel, opts TrainOptions) (*CategoryModel, error) {
	return core.TrainCategoryModel(train, cm, opts)
}

// LoadCategoryModelFile reads a model bundle saved with
// (*CategoryModel).SaveFile.
func LoadCategoryModelFile(path string) (*CategoryModel, error) {
	return core.LoadCategoryModelFile(path)
}

// DefaultAdaptiveConfig returns Algorithm 1's default hyperparameters
// for an N-category model.
func DefaultAdaptiveConfig(numCategories int) AdaptiveConfig {
	return core.DefaultAdaptiveConfig(numCategories)
}

// NewAdaptiveRankingPolicy wires a trained category model to a fresh
// Algorithm 1 controller: the paper's placement method.
func NewAdaptiveRankingPolicy(model *CategoryModel, cm *CostModel) (Policy, error) {
	return policy.NewAdaptiveRanking(model, cm, core.DefaultAdaptiveConfig(model.NumCategories()))
}

// NewAdaptiveRankingPolicyWithConfig is NewAdaptiveRankingPolicy with
// explicit controller hyperparameters.
func NewAdaptiveRankingPolicyWithConfig(model *CategoryModel, cm *CostModel, cfg AdaptiveConfig) (Policy, error) {
	return policy.NewAdaptiveRanking(model, cm, cfg)
}

// NewFirstFitPolicy returns the static FirstFit baseline (§3.2).
func NewFirstFitPolicy() Policy { return policy.FirstFit{} }

// NewHeuristicPolicy returns the CacheSack-style adaptive baseline
// (§3.3), primed with the given historical jobs.
func NewHeuristicPolicy(cm *CostModel, history []*Job) Policy {
	h := policy.NewHeuristic(cm, policy.DefaultHeuristicConfig())
	h.Prime(history)
	return h
}

// DefaultServeConfig returns single-machine serving parameters for an
// N-category model (8 shards, 64-job batches, 2 ms flush).
func DefaultServeConfig(numCategories int) ServeConfig {
	return serve.DefaultConfig(numCategories)
}

// NewModelRegistry creates an in-memory model registry. Use
// (*ModelRegistry).Publish to roll out new versions; servers created
// with NewServerFromRegistry pick them up atomically under load.
func NewModelRegistry() *ModelRegistry { return registry.New() }

// NewServer starts a placement server for one trained model: incoming
// jobs are sharded across Algorithm 1 controllers and classified with
// batched forest inference. The model is published as version 1 of
// workload "default" in a private registry; use NewServerFromRegistry
// to manage versions (hot swap, rollback) yourself.
func NewServer(model *CategoryModel, cm *CostModel, cfg ServeConfig) (*Server, error) {
	reg := registry.New()
	if _, err := reg.Publish("default", model, 0); err != nil {
		return nil, err
	}
	return serve.New(reg, "default", cm, cfg)
}

// NewServerFromRegistry starts a placement server that resolves and
// tracks the workload's active model version in reg: every Publish or
// Rollback swaps the compiled model atomically without pausing traffic.
func NewServerFromRegistry(reg *ModelRegistry, workload string, cm *CostModel, cfg ServeConfig) (*Server, error) {
	return serve.New(reg, workload, cm, cfg)
}

// DefaultDaemonConfig returns placement-daemon parameters for an
// N-category model: the serving defaults plus 64 in-flight placement
// requests, 256 in-flight feedback posts and a 5 ms queue deadline.
func DefaultDaemonConfig(numCategories int) DaemonConfig {
	return rpc.DefaultConfig(numCategories)
}

// NewDaemon builds the placement daemon serving the workload's active
// model from reg over the JSON-over-HTTP wire protocol (POST
// /v1/place, POST /v1/outcome, GET /v1/model, /healthz, /varz).
// Start it with (*Daemon).Start and stop it with (*Daemon).Shutdown;
// registry publishes hot-swap the model under live network load.
func NewDaemon(reg *ModelRegistry, workload string, cm *CostModel, cfg DaemonConfig) (*Daemon, error) {
	return rpc.NewDaemon(reg, workload, cm, cfg)
}

// DefaultClientConfig returns client parameters for a daemon at
// baseURL: 2 s deadlines and 3 shed retries with doubling backoff.
func DefaultClientConfig(baseURL string) ClientConfig {
	return rpc.DefaultClientConfig(baseURL)
}

// NewClient builds a placement client for the daemon at cfg.BaseURL.
// One Client is meant to be shared by many goroutines; it reuses
// connections, applies per-request deadlines and absorbs shed (429)
// responses with bounded retries. Set cfg.Codec to CodecBinary for the
// binary wire codec with client-side feature extraction and
// pre-binning (falls back to JSON against daemons that don't speak
// it); (*Client).OpenStream upgrades to a persistent binary stream.
func NewClient(cfg ClientConfig) (*Client, error) {
	return rpc.NewClient(cfg)
}

// DefaultRouterConfig returns routing-layer parameters for a plane of
// daemons at the given base URLs: 64 virtual nodes per backend, a 1.25
// bounded-load factor, 250 ms health probes and binary-codec clients.
func DefaultRouterConfig(nodes []string) RouterConfig {
	return router.DefaultConfig(nodes)
}

// NewRouter builds the routing layer over cfg.Nodes and starts its
// health prober. Place fans each batch across the plane grouped by
// workload template (the same key the daemons shard on), reroutes
// around dead or shedding nodes, and merges decisions back in request
// order. Close it when done.
func NewRouter(cfg RouterConfig) (*Router, error) {
	return router.New(cfg)
}

// NewModelReplicator follows workload in src and mirrors every publish
// and rollback into registries attached with (*ModelReplicator).Attach
// — newly attached followers (e.g. a restarted node's fresh registry)
// first replay the history they missed, with version numbers aligned
// to the source. Close it to stop following.
func NewModelReplicator(src *ModelRegistry, workload string) *ModelReplicator {
	return router.NewReplicator(src, workload)
}

// Place codecs for ClientConfig.Codec.
const (
	// CodecJSON is the JSON request/response codec (the default).
	CodecJSON = rpc.CodecJSON
	// CodecBinary is the binary frame codec: the client fetches the
	// model's bin schema once, extracts and bins features locally, and
	// ships fixed-width pre-binned rows the daemon serves with no
	// per-job feature work. Decisions are bit-identical to JSON's.
	CodecBinary = rpc.CodecBinary
)

// DefaultOnlineConfig returns continuous-learning parameters for an
// N-category model: a 3.5-day / 8192-record window, daily retrain
// cadence, drift trigger at 0.15 total-variation shift and a 0.5-point
// TCO-savings regression gate.
func DefaultOnlineConfig(numCategories int) OnlineConfig {
	return online.DefaultConfig(numCategories)
}

// NewRebalancePolicy wraps a write-time placement policy with the
// heat-aware global rebalancer: outcome observations feed a decayed
// per-workload heat tracker, and a periodic solver re-poses SSD
// residency as the paper's Section 3.1 knapsack, demoting workloads
// whose realized value no longer justifies their footprint.
func NewRebalancePolicy(inner Policy, cm *CostModel, cfg RebalanceConfig) *RebalancePolicy {
	return rebalance.New(inner, cm, cfg)
}

// NewOnlineLearner creates the continuous-learning pipeline for a
// workload: stream placement outcomes in with Observe and the learner
// retrains on fresh data, shadow-gates each candidate against the live
// model and publishes survivors to reg — atomically hot-swapping any
// server created with NewServerFromRegistry on the same workload.
func NewOnlineLearner(reg *ModelRegistry, workload string, cm *CostModel, cfg OnlineConfig) (*OnlineLearner, error) {
	return online.New(reg, workload, cm, cfg)
}

// RunOnlineLoop replays a trace through the full closed loop — server
// decisions, simulated SSD occupancy, outcome feedback to both the
// server's controllers and the learner's window — so retrains, gate
// verdicts and hot swaps all happen mid-replay. Pass a nil learner to
// replay the frozen-model baseline. Configure the server with
// BatchSize 1 for sequential virtual-time replay.
func RunOnlineLoop(tr *Trace, srv *Server, learner *OnlineLearner, cm *CostModel, cfg SimConfig) (*SimResult, error) {
	return online.RunLoop(tr, srv, learner, cm, cfg)
}

// TailSavingsPercent returns a replay's TCO savings restricted to jobs
// arriving at or after fromSec (requires SimConfig.KeepRecords) — the
// post-drift comparison the online loop is judged on.
func TailSavingsPercent(res *SimResult, cm *CostModel, fromSec float64) (float64, error) {
	return online.TailSavingsPercent(res, cm, fromSec)
}

// DefaultFleetConfig returns a laptop-scale fleet of n clusters from
// one seed: four simulated days per cluster, heterogeneous mixes,
// loads and quotas.
func DefaultFleetConfig(n int, seed int64) FleetConfig {
	return fleet.DefaultConfig(n, seed)
}

// RunFleet simulates a multi-cluster fleet end to end: per-cluster
// traces, per-cluster models trained in parallel, and each cluster's
// test half evaluated under per-cluster vs one-global vs transfer
// models — optionally with a closed online-learning loop per cluster.
// The report is bit-identical at any FleetConfig.Workers value.
func RunFleet(cfg FleetConfig) (*FleetReport, error) {
	return fleet.Run(cfg)
}

// RunFleetWithRegistry is RunFleet publishing each cluster's online
// models into reg under FleetWorkloadKey(cluster) — pass your own
// registry to inspect or persist the fleet's model versions.
func RunFleetWithRegistry(cfg FleetConfig, reg *ModelRegistry) (*FleetReport, error) {
	return fleet.RunWithRegistry(cfg, reg)
}

// FleetWorkloadKey is the registry namespace ("cluster/<id>") a
// cluster's online loop publishes under during a fleet run.
func FleetWorkloadKey(cluster string) string { return fleet.WorkloadKey(cluster) }

// Simulate replays a trace through a placement policy under an SSD
// quota and returns savings metrics.
func Simulate(tr *Trace, p Policy, cm *CostModel, cfg SimConfig) (*SimResult, error) {
	return sim.Run(tr, p, cm, cfg)
}

// SolveOracle computes the clairvoyant placement (Section 3.1's
// headroom oracle) for a job set under an SSD capacity.
func SolveOracle(jobs []*Job, capacity float64, cm *CostModel, cfg OracleConfig) (*OracleResult, error) {
	return oracle.Solve(jobs, capacity, cm, cfg)
}

// DefaultOracleConfig returns the oracle solver defaults.
func DefaultOracleConfig() OracleConfig { return oracle.DefaultConfig() }

// GenerateCluster produces a synthetic cluster workload trace — the
// stand-in for production traces (see DESIGN.md for the substitution
// rationale).
func GenerateCluster(cfg GeneratorConfig) *Trace {
	return trace.NewGenerator(cfg).Generate()
}

// DefaultGeneratorConfig returns a medium-sized cluster workload
// configuration.
func DefaultGeneratorConfig(cluster string, seed int64) GeneratorConfig {
	return trace.DefaultGeneratorConfig(cluster, seed)
}

// ClusterConfigs builds n distinct cluster configurations with uneven
// workload mixes (cluster 3 is the pathological outlier).
func ClusterConfigs(n int, baseSeed int64) []GeneratorConfig {
	return trace.ClusterConfigs(n, baseSeed)
}

// SaveTrace / LoadTrace persist traces as JSON lines.
func SaveTrace(path string, tr *Trace) error { return trace.SaveFile(path, tr) }

// LoadTrace reads a trace written by SaveTrace.
func LoadTrace(path string) (*Trace, error) { return trace.LoadFile(path) }
