// Package repro is the root of the BYOM storage-placement
// reproduction: a from-scratch Go implementation of "A Bring-Your-Own-
// Model Approach for ML-Driven Storage Placement in Warehouse-Scale
// Computers" (MLSys 2025), including every substrate the paper's
// evaluation depends on.
//
// The public API lives in package repro/byom; the experiment harness
// that regenerates every table and figure is repro/internal/experiments
// (driven by cmd/experiments and the benchmarks in bench_test.go).
// See README.md for a map and DESIGN.md for the substitution notes.
package repro
